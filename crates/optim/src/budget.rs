//! Cooperative solve budgets and typed partial results.
//!
//! A [`SolveBudget`] carries a wall-clock deadline and iteration/node caps.
//! Every solver in this crate checks it cooperatively inside its main loop;
//! hitting a budget is **not an error** — the solver returns
//! [`SolveOutcome::Partial`] with its best incumbent, the tightest bound it
//! proved, and which budget tripped, so callers can degrade gracefully
//! instead of restarting from nothing.
//!
//! Deadlines are stored as an absolute [`Instant`], so cloning a budget
//! *shares* the deadline: Algorithm 1 hands one budget to all `2·|E_D|`
//! subproblems and the sweep as a whole respects the wall-clock bound.
//!
//! # Sharing across worker threads
//!
//! A budget upgraded with [`SolveBudget::cancellable`] additionally carries
//! an atomics-based state block that its clones share. This gives parallel
//! sweeps two properties:
//!
//! - **Cooperative cancellation.** The first worker that observes the
//!   deadline pass raises a shared flag; every other in-flight solve sees
//!   the flag at its next budget check (one relaxed atomic load — no extra
//!   clock reads) and degrades to its incumbent with the usual
//!   [`BudgetTripped::WallClock`]. [`SolveBudget::cancel`] raises the same
//!   flag explicitly, reported as [`BudgetTripped::Cancelled`].
//! - **A shared node tally.** Solvers report explored branch-and-bound
//!   nodes via [`SolveBudget::record_nodes`]; the sweep can read the
//!   cross-worker total with [`SolveBudget::nodes_recorded`] without any
//!   synchronization of its own.
//!
//! `SolveBudget` is `Send + Sync`; clones are the sharing mechanism.
//!
//! ```
//! use std::time::Duration;
//! use ed_optim::budget::{SolveBudget, SolveOutcome};
//! use ed_optim::lp::{LpProblem, Row};
//!
//! # fn main() -> Result<(), ed_optim::OptimError> {
//! let mut lp = LpProblem::maximize();
//! let x = lp.add_var(0.0, 1.0, 1.0);
//! lp.add_row(Row::le(1.0).coef(x, 1.0));
//! let budget = SolveBudget::with_deadline(Duration::from_secs(5));
//! match lp.solve_budgeted(&Default::default(), &budget)? {
//!     SolveOutcome::Solved(sol) => assert!((sol.objective - 1.0).abs() < 1e-9),
//!     SolveOutcome::Partial(p) => println!("budget tripped: {:?}", p.tripped),
//! }
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which cooperative budget was exhausted first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetTripped {
    /// The wall-clock deadline passed.
    WallClock,
    /// The iteration cap was reached (simplex pivots, active-set or IPM
    /// iterations).
    Iterations,
    /// The branch-and-bound node cap was reached.
    Nodes,
    /// The shared budget was cancelled explicitly via
    /// [`SolveBudget::cancel`] (cooperative cancellation across workers).
    Cancelled,
}

impl std::fmt::Display for BudgetTripped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetTripped::WallClock => write!(f, "wall-clock deadline"),
            BudgetTripped::Iterations => write!(f, "iteration cap"),
            BudgetTripped::Nodes => write!(f, "node cap"),
            BudgetTripped::Cancelled => write!(f, "cooperative cancellation"),
        }
    }
}

/// Atomics shared by every clone of a cancellable budget.
#[derive(Debug, Default)]
struct BudgetShared {
    /// Raised when any holder cancels or observes the deadline pass; all
    /// clones trip on their next budget check.
    cancelled: AtomicBool,
    /// `true` when the cancellation came from a deadline observation, so
    /// siblings report [`BudgetTripped::WallClock`] rather than
    /// [`BudgetTripped::Cancelled`].
    wall_observed: AtomicBool,
    /// Cross-worker branch-and-bound node tally.
    nodes: AtomicUsize,
}

/// A cooperative solve budget: wall-clock deadline plus iteration and node
/// caps, all optional. See the [module docs](self) for semantics, including
/// the cross-thread sharing enabled by [`SolveBudget::cancellable`].
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    deadline: Option<Instant>,
    max_iterations: Option<usize>,
    max_nodes: Option<usize>,
    shared: Option<Arc<BudgetShared>>,
}

impl SolveBudget {
    /// A budget that never trips (all limits absent).
    pub fn unlimited() -> SolveBudget {
        SolveBudget::default()
    }

    /// A budget whose deadline is `timeout` from now. The deadline is fixed
    /// at this call — clones share it.
    pub fn with_deadline(timeout: Duration) -> SolveBudget {
        SolveBudget {
            deadline: Some(Instant::now() + timeout),
            ..SolveBudget::default()
        }
    }

    /// A budget with an explicit absolute deadline.
    pub fn with_deadline_at(deadline: Instant) -> SolveBudget {
        SolveBudget { deadline: Some(deadline), ..SolveBudget::default() }
    }

    /// Caps total iterations (builder style).
    pub fn max_iterations(mut self, n: usize) -> SolveBudget {
        self.max_iterations = Some(n);
        self
    }

    /// Caps branch-and-bound nodes (builder style).
    pub fn max_nodes(mut self, n: usize) -> SolveBudget {
        self.max_nodes = Some(n);
        self
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The iteration cap, if any.
    pub fn iteration_cap(&self) -> Option<usize> {
        self.max_iterations
    }

    /// The node cap, if any.
    pub fn node_cap(&self) -> Option<usize> {
        self.max_nodes
    }

    /// `true` when no limit is set — solvers skip the per-iteration clock
    /// read entirely in that case. A cancellable budget is never unlimited:
    /// its cancel flag must stay observable inside solver loops.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_iterations.is_none()
            && self.max_nodes.is_none()
            && self.shared.is_none()
    }

    /// A view of this budget keeping only the wall-clock deadline (and the
    /// shared cancellation state, when present). Used by branch and bound
    /// to thread the shared deadline into node relaxations without letting
    /// the *node*-level iteration counter trip the *tree*-level iteration
    /// cap.
    pub fn wall_only(&self) -> SolveBudget {
        SolveBudget {
            deadline: self.deadline,
            max_iterations: None,
            max_nodes: None,
            shared: self.shared.clone(),
        }
    }

    /// Upgrades this budget with shared, atomics-based cancellation state.
    /// Clones of the returned budget observe each other's [`cancel`]
    /// (reported as [`BudgetTripped::Cancelled`]) and deadline trips
    /// (reported as [`BudgetTripped::WallClock`]), and share one
    /// cross-worker node tally.
    ///
    /// [`cancel`]: SolveBudget::cancel
    pub fn cancellable(mut self) -> SolveBudget {
        if self.shared.is_none() {
            self.shared = Some(Arc::new(BudgetShared::default()));
        }
        self
    }

    /// `true` when this budget carries shared cancellation state.
    pub fn is_cancellable(&self) -> bool {
        self.shared.is_some()
    }

    /// Raises the shared cancel flag: every clone of this budget trips with
    /// [`BudgetTripped::Cancelled`] at its next cooperative check. A no-op
    /// on budgets without shared state (see [`SolveBudget::cancellable`]).
    pub fn cancel(&self) {
        if let Some(s) = &self.shared {
            s.cancelled.store(true, Ordering::Release);
        }
    }

    /// `true` when the shared cancel flag is raised (for any reason —
    /// explicit [`cancel`] or an observed deadline trip).
    ///
    /// [`cancel`]: SolveBudget::cancel
    pub fn is_cancelled(&self) -> bool {
        self.shared.as_ref().is_some_and(|s| s.cancelled.load(Ordering::Acquire))
    }

    /// Adds `n` explored branch-and-bound nodes to the shared cross-worker
    /// tally. A no-op on budgets without shared state.
    pub fn record_nodes(&self, n: usize) {
        if let Some(s) = &self.shared {
            s.nodes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The shared node tally accumulated by [`SolveBudget::record_nodes`]
    /// across all clones (0 without shared state).
    pub fn nodes_recorded(&self) -> usize {
        self.shared.as_ref().map_or(0, |s| s.nodes.load(Ordering::Relaxed))
    }

    /// Time left before the deadline (`None` when no deadline is set;
    /// `Some(ZERO)` once passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Checks the shared cancel flag (one relaxed load), then the wall
    /// clock. The first holder to observe the deadline pass raises the
    /// shared flag so sibling workers trip without reading the clock.
    pub fn wall_tripped(&self) -> Option<BudgetTripped> {
        if let Some(s) = &self.shared {
            if s.cancelled.load(Ordering::Acquire) {
                return Some(if s.wall_observed.load(Ordering::Acquire) {
                    BudgetTripped::WallClock
                } else {
                    BudgetTripped::Cancelled
                });
            }
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                if let Some(s) = &self.shared {
                    // wall_observed first: a sibling that sees `cancelled`
                    // must already see the reason.
                    s.wall_observed.store(true, Ordering::Release);
                    s.cancelled.store(true, Ordering::Release);
                }
                Some(BudgetTripped::WallClock)
            }
            _ => None,
        }
    }

    /// Checks the iteration cap against `used`, then the wall clock.
    pub fn iter_tripped(&self, used: usize) -> Option<BudgetTripped> {
        if let Some(cap) = self.max_iterations {
            if used >= cap {
                return Some(BudgetTripped::Iterations);
            }
        }
        self.wall_tripped()
    }

    /// Checks the node cap against `used`, then the wall clock.
    pub fn node_tripped(&self, used: usize) -> Option<BudgetTripped> {
        if let Some(cap) = self.max_nodes {
            if used >= cap {
                return Some(BudgetTripped::Nodes);
            }
        }
        self.wall_tripped()
    }
}

/// What a budgeted solve managed before its budget tripped.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial {
    /// Which budget tripped.
    pub tripped: BudgetTripped,
    /// Best *feasible* incumbent found, if any. `None` means no feasible
    /// point was reached (e.g. the trip hit during simplex phase 1 or an
    /// interior-point run, whose iterates are not primal feasible).
    pub x: Option<Vec<f64>>,
    /// Objective at the incumbent.
    pub objective: Option<f64>,
    /// Best proven bound on the optimum at the trip (branch-and-bound
    /// frontier bound; `None` for single-point methods).
    pub bound: Option<f64>,
    /// Iterations performed before the trip.
    pub iterations: usize,
    /// Branch-and-bound nodes explored before the trip (0 for LP/QP).
    pub nodes: usize,
}

/// Outcome of a budgeted solve: either a full solution or a typed partial
/// result.
#[derive(Debug, Clone)]
pub enum SolveOutcome<S> {
    /// The solver finished inside its budget.
    Solved(S),
    /// A budget tripped; here is the best information gathered.
    Partial(Partial),
}

impl<S> SolveOutcome<S> {
    /// The full solution, if the solve completed.
    pub fn solved(self) -> Option<S> {
        match self {
            SolveOutcome::Solved(s) => Some(s),
            SolveOutcome::Partial(_) => None,
        }
    }

    /// `true` when a budget tripped.
    pub fn is_partial(&self) -> bool {
        matches!(self, SolveOutcome::Partial(_))
    }

    /// The partial result, if a budget tripped.
    pub fn partial(self) -> Option<Partial> {
        match self {
            SolveOutcome::Solved(_) => None,
            SolveOutcome::Partial(p) => Some(p),
        }
    }

    /// Maps the solved variant.
    pub fn map<T>(self, f: impl FnOnce(S) -> T) -> SolveOutcome<T> {
        match self {
            SolveOutcome::Solved(s) => SolveOutcome::Solved(f(s)),
            SolveOutcome::Partial(p) => SolveOutcome::Partial(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.wall_tripped(), None);
        assert_eq!(b.iter_tripped(usize::MAX - 1), None);
        assert_eq!(b.node_tripped(usize::MAX - 1), None);
    }

    #[test]
    fn expired_deadline_trips_wall_clock() {
        let b = SolveBudget::with_deadline_at(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.wall_tripped(), Some(BudgetTripped::WallClock));
        assert_eq!(b.iter_tripped(0), Some(BudgetTripped::WallClock));
    }

    #[test]
    fn iteration_cap_trips_before_wall() {
        let b = SolveBudget::with_deadline(Duration::from_secs(3600)).max_iterations(10);
        assert_eq!(b.iter_tripped(9), None);
        assert_eq!(b.iter_tripped(10), Some(BudgetTripped::Iterations));
    }

    #[test]
    fn clones_share_the_deadline() {
        let b = SolveBudget::with_deadline(Duration::from_secs(60));
        let c = b.clone();
        assert_eq!(b.deadline(), c.deadline());
    }

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let b = SolveBudget::unlimited().cancellable();
        let c = b.clone();
        assert!(!b.is_unlimited(), "cancellable budgets must stay observable");
        assert_eq!(c.wall_tripped(), None);
        b.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.wall_tripped(), Some(BudgetTripped::Cancelled));
        assert_eq!(c.iter_tripped(0), Some(BudgetTripped::Cancelled));
        assert_eq!(c.node_tripped(0), Some(BudgetTripped::Cancelled));
    }

    #[test]
    fn observed_deadline_cancels_siblings_as_wall_clock() {
        let b = SolveBudget::with_deadline_at(Instant::now() - Duration::from_millis(1))
            .cancellable();
        let c = b.clone();
        // One holder observes the deadline; the sibling then trips via the
        // shared flag and still reports the wall clock as the reason.
        assert_eq!(b.wall_tripped(), Some(BudgetTripped::WallClock));
        assert!(c.is_cancelled());
        assert_eq!(c.wall_tripped(), Some(BudgetTripped::WallClock));
    }

    #[test]
    fn cancel_without_shared_state_is_noop() {
        let b = SolveBudget::unlimited();
        b.cancel();
        assert!(!b.is_cancelled());
        assert_eq!(b.wall_tripped(), None);
    }

    #[test]
    fn node_tally_accumulates_across_clones_and_threads() {
        let b = SolveBudget::unlimited().cancellable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = b.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c.record_nodes(3);
                    }
                });
            }
        });
        assert_eq!(b.nodes_recorded(), 4 * 100 * 3);
    }

    /// The budget-cancellation contract the parallel sweep relies on: a
    /// cancel (here explicit; deadline observations take the same path)
    /// stops every worker spinning on cooperative checks.
    #[test]
    fn cancellation_stops_all_workers() {
        let budget = SolveBudget::unlimited().cancellable();
        let trips: Vec<BudgetTripped> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let b = budget.clone();
                    s.spawn(move || {
                        let mut used = 0usize;
                        loop {
                            if let Some(t) = b.iter_tripped(used) {
                                return t;
                            }
                            used += 1;
                            std::thread::yield_now();
                        }
                    })
                })
                .collect();
            budget.cancel();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        assert_eq!(trips, vec![BudgetTripped::Cancelled; 4]);
    }

    #[test]
    fn node_cap_trips() {
        let b = SolveBudget::unlimited().max_nodes(5);
        assert_eq!(b.node_tripped(4), None);
        assert_eq!(b.node_tripped(5), Some(BudgetTripped::Nodes));
        assert_eq!(b.iter_tripped(1_000_000), None, "node cap must not cap iterations");
    }
}
