//! Primal-dual interior-point method for convex QP.
//!
//! Complements the active-set solver: interior-point iterations are immune
//! to the combinatorial stalling that active-set methods suffer on heavily
//! degenerate polytopes (thousands of near-ties at a congested dispatch
//! vertex), at the price of slightly less crisp active-set identification.
//! The dispatch layer uses active-set first and falls back here
//! ([`crate::qp::QpMethod::Auto`]).
//!
//! Standard infeasible-start formulation with slacks `s ≥ 0` on the
//! inequalities, Newton steps on the perturbed KKT system reduced to the
//! `(x, y)` block, a fraction-to-boundary step rule, and a fixed centering
//! parameter.

use crate::budget::{Partial, SolveBudget, SolveOutcome};
use crate::qp::problem::{DenseQp, QpSolution};
use crate::OptimError;
use ed_linalg::{dot, Lu, Matrix};

/// Options for the interior-point solver.
#[derive(Debug, Clone)]
pub struct IpmOptions {
    /// Maximum Newton iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on residuals and the complementarity gap
    /// (relative to problem scale).
    pub tol: f64,
    /// Centering parameter `σ ∈ (0,1)`.
    pub sigma: f64,
}

impl Default for IpmOptions {
    fn default() -> Self {
        IpmOptions {
            max_iterations: 120,
            tol: crate::certify::Tolerances::default().opt,
            sigma: 0.15,
        }
    }
}

/// Solves the QP by the interior-point method.
///
/// # Errors
///
/// - [`OptimError::Infeasible`] if the iteration converges to a
///   certificate-free stall with large primal residual (practical
///   infeasibility detection).
/// - [`OptimError::IterationLimit`] / [`OptimError::Numerical`] otherwise.
pub(crate) fn solve(qp: &DenseQp, options: &IpmOptions) -> Result<QpSolution, OptimError> {
    match solve_budgeted(qp, options, &SolveBudget::unlimited())? {
        SolveOutcome::Solved(sol) => Ok(sol),
        SolveOutcome::Partial(_) => unreachable!("an unlimited budget cannot trip"),
    }
}

/// Budgeted interior-point solve. Interior iterates are **not** primal
/// feasible, so a budget trip returns `x: None` — callers must fall back to
/// another rung rather than dispatch a half-converged interior point.
pub(crate) fn solve_budgeted(
    qp: &DenseQp,
    options: &IpmOptions,
    budget: &SolveBudget,
) -> Result<SolveOutcome<QpSolution>, OptimError> {
    let _t = ed_obs::timer("optim.ipm");
    let out = solve_budgeted_inner(qp, options, budget);
    if ed_obs::enabled() {
        let iterations = match &out {
            Ok(SolveOutcome::Solved(s)) => s.iterations,
            Ok(SolveOutcome::Partial(p)) => p.iterations,
            Err(_) => 0,
        };
        ed_obs::counter("optim.ipm.solves", 1);
        ed_obs::counter("optim.ipm.iterations", iterations as u64);
    }
    out
}

fn solve_budgeted_inner(
    qp: &DenseQp,
    options: &IpmOptions,
    budget: &SolveBudget,
) -> Result<SolveOutcome<QpSolution>, OptimError> {
    let n = qp.n;
    let me = qp.a_eq.len();
    let mi = qp.a_in.len();
    if mi == 0 && me == 0 {
        // Unconstrained: Newton step from zero.
        let lu = Lu::factor(&qp.h).map_err(|_| OptimError::Numerical {
            what: "unconstrained QP with singular Hessian".into(),
        })?;
        let x = lu.solve(&qp.c.iter().map(|c| -c).collect::<Vec<_>>())?;
        let objective = qp.objective_value(&x);
        return Ok(SolveOutcome::Solved(QpSolution {
            x,
            objective,
            eq_duals: Vec::new(),
            ineq_duals: Vec::new(),
            active_set: Vec::new(),
            iterations: 1,
        }));
    }

    let scale = 1.0
        + qp.b_in.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
        + qp.b_eq.iter().fold(0.0_f64, |m, v| m.max(v.abs()));

    // Start: x = 0, y = 0, s = max(b - Ax, 1), λ = 1.
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; me];
    let mut s: Vec<f64> = qp
        .a_in
        .iter()
        .zip(&qp.b_in)
        .map(|(a, &b)| (b - dot(a, &x)).max(1.0))
        .collect();
    let mut lam = vec![1.0; mi];

    for iter in 0..options.max_iterations {
        if !budget.is_unlimited() {
            if let Some(tripped) = budget.iter_tripped(iter) {
                return Ok(SolveOutcome::Partial(Partial {
                    tripped,
                    x: None, // interior iterates are not primal feasible
                    objective: None,
                    bound: None,
                    iterations: iter,
                    nodes: 0,
                }));
            }
        }
        // Residuals.
        let hx = qp.h.matvec(&x)?;
        let mut r_d: Vec<f64> = (0..n).map(|j| hx[j] + qp.c[j]).collect();
        for (a, &yi) in qp.a_eq.iter().zip(&y) {
            for j in 0..n {
                r_d[j] += a[j] * yi;
            }
        }
        for (a, &li) in qp.a_in.iter().zip(&lam) {
            for j in 0..n {
                r_d[j] += a[j] * li;
            }
        }
        let r_e: Vec<f64> = qp
            .a_eq
            .iter()
            .zip(&qp.b_eq)
            .map(|(a, &b)| dot(a, &x) - b)
            .collect();
        let r_i: Vec<f64> = qp
            .a_in
            .iter()
            .zip(&qp.b_in)
            .zip(&s)
            .map(|((a, &b), &si)| dot(a, &x) + si - b)
            .collect();
        let gap = if mi > 0 { dot(&s, &lam) / mi as f64 } else { 0.0 };

        let worst = ed_linalg::norm_inf(&r_d)
            .max(ed_linalg::norm_inf(&r_e))
            .max(ed_linalg::norm_inf(&r_i))
            .max(gap);
        if worst <= options.tol * scale {
            let active_set: Vec<usize> = (0..mi)
                .filter(|&i| s[i] <= 1e-6 * scale.max(1.0))
                .collect();
            let objective = qp.objective_value(&x);
            return Ok(SolveOutcome::Solved(QpSolution {
                x,
                objective,
                eq_duals: y,
                ineq_duals: lam,
                active_set,
                iterations: iter + 1,
            }));
        }
        // Practical infeasibility: multipliers blowing up with a stubborn
        // primal residual.
        let lam_max = lam.iter().cloned().fold(0.0_f64, f64::max);
        if lam_max > 1e12 {
            return Err(OptimError::Infeasible);
        }

        // Reduced Newton system on (Δx, Δy):
        //   [H + Σ (λ_i/s_i) a_i a_i',  A_e'] [Δx]   [-r_d - Σ a_i (λ_i r_i^c)/s_i]
        //   [A_e,                        0  ] [Δy] = [-r_e]
        // where r_i^c folds the complementarity target μσ.
        let mu_target = options.sigma * gap;
        let dim = n + me;
        let mut kkt = Matrix::zeros(dim, dim);
        for i in 0..n {
            for j in 0..n {
                kkt[(i, j)] = qp.h[(i, j)];
            }
        }
        let mut rhs = vec![0.0; dim];
        for j in 0..n {
            rhs[j] = -r_d[j];
        }
        for i in 0..mi {
            let w = lam[i] / s[i];
            let a = &qp.a_in[i];
            // rank-one update w * a a'
            for p in 0..n {
                let ap = a[p];
                if ap == 0.0 {
                    continue;
                }
                for q in 0..n {
                    kkt[(p, q)] += w * ap * a[q];
                }
                // Complementarity-folded rhs with Δs = -r_i - a'Δx:
                // Δλ_i = σμ/s_i - λ_i + w_i r_i + w_i a'Δx, so the constant
                // part (σμ + λ_i r_i)/s_i - λ_i moves to the rhs.
                rhs[p] -= ap * ((mu_target + lam[i] * r_i[i]) / s[i] - lam[i]);
            }
        }
        for (r, a) in qp.a_eq.iter().enumerate() {
            for j in 0..n {
                kkt[(n + r, j)] = a[j];
                kkt[(j, n + r)] = a[j];
            }
            kkt[(n + r, n + r)] = -1e-12; // tiny regularization
            rhs[n + r] = -r_e[r];
        }
        let lu = Lu::factor(&kkt).map_err(|e| OptimError::Numerical {
            what: format!("IPM KKT factorization failed: {e}"),
        })?;
        let delta = lu.solve(&rhs)?;
        let dx = &delta[..n];
        let dy = &delta[n..];

        // Recover Δs, Δλ.
        let mut ds = vec![0.0; mi];
        let mut dl = vec![0.0; mi];
        for i in 0..mi {
            ds[i] = -r_i[i] - dot(&qp.a_in[i], dx);
            dl[i] = (mu_target - lam[i] * ds[i]) / s[i] - lam[i];
        }

        // Fraction-to-boundary step.
        let mut alpha: f64 = 1.0;
        for i in 0..mi {
            if ds[i] < 0.0 {
                alpha = alpha.min(-0.995 * s[i] / ds[i]);
            }
            if dl[i] < 0.0 {
                alpha = alpha.min(-0.995 * lam[i] / dl[i]);
            }
        }
        for j in 0..n {
            x[j] += alpha * dx[j];
        }
        for (yi, d) in y.iter_mut().zip(dy) {
            *yi += alpha * d;
        }
        for i in 0..mi {
            s[i] += alpha * ds[i];
            lam[i] += alpha * dl[i];
        }
    }
    // No feasible incumbent to attach: interior iterates violate the
    // constraints until convergence.
    Err(OptimError::IterationLimit { limit: options.max_iterations, incumbent: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::{QpMethod, QpOptions, QpProblem};

    fn solve_ipm(qp: &QpProblem) -> QpSolution {
        solve(&qp.dense(), &IpmOptions::default()).unwrap()
    }

    #[test]
    fn matches_active_set_on_nocedal_example() {
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[2.0, 2.0]);
        qp.set_linear(&[-2.0, -5.0]);
        qp.add_ineq(&[-1.0, 2.0], 2.0);
        qp.add_ineq(&[1.0, 2.0], 6.0);
        qp.add_ineq(&[1.0, -2.0], 2.0);
        qp.add_ineq(&[-1.0, 0.0], 0.0);
        qp.add_ineq(&[0.0, -1.0], 0.0);
        let s = solve_ipm(&qp);
        assert!((s.x[0] - 1.4).abs() < 1e-6, "{:?}", s.x);
        assert!((s.x[1] - 1.7).abs() < 1e-6, "{:?}", s.x);
    }

    #[test]
    fn equality_constrained() {
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[2.0, 2.0]);
        qp.add_eq(&[1.0, 1.0], 2.0);
        let s = solve_ipm(&qp);
        assert!((s.x[0] - 1.0).abs() < 1e-7 && (s.x[1] - 1.0).abs() < 1e-7);
        assert!((s.eq_duals[0] + 2.0).abs() < 1e-5, "nu={:?}", s.eq_duals);
    }

    #[test]
    fn dispatch_duals_match_active_set() {
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[0.02, 0.04]);
        qp.set_linear(&[10.0, 8.0]);
        qp.add_eq(&[1.0, 1.0], 200.0);
        qp.add_bounds(0, 0.0, 300.0);
        qp.add_bounds(1, 0.0, 300.0);
        let s = solve_ipm(&qp);
        assert!((s.x[0] - 100.0).abs() < 1e-5, "{:?}", s.x);
        assert!((-s.eq_duals[0] - 12.0).abs() < 1e-4);
    }

    #[test]
    fn infeasible_detected() {
        let mut qp = QpProblem::new(1);
        qp.set_quadratic_diag(&[2.0]);
        qp.add_ineq(&[1.0], 0.0);
        qp.add_ineq(&[-1.0], -1.0);
        let r = solve(&qp.dense(), &IpmOptions::default());
        assert!(r.is_err());
    }

    #[test]
    fn auto_method_solves_via_fallback_path() {
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[2.0, 2.0]);
        qp.set_linear(&[-2.0, -2.0]);
        qp.add_ineq(&[1.0, 0.0], 0.5);
        let opts = QpOptions { method: QpMethod::InteriorPoint, ..Default::default() };
        let s = qp.solve_with(&opts).unwrap();
        assert!((s.x[0] - 0.5).abs() < 1e-6 && (s.x[1] - 1.0).abs() < 1e-6);
    }
}
