//! QP model and solution types, backed by the shared [`Model`] IR.

use crate::budget::{SolveBudget, SolveOutcome};
use crate::model::{Model, Row, RowSense, Sense, VarId};
use crate::qp::active_set::{self, QpOptions};
use crate::OptimError;
use ed_linalg::Matrix;

/// A convex quadratic program `min 0.5 x'Hx + c'x` subject to linear
/// equalities and inequalities.
///
/// The problem data lives in a shared sparse [`Model`]: this type is a thin
/// front end that keeps the historical dense-row building API (`add_eq` /
/// `add_ineq` with coefficient slices) and the eq/ineq dual-indexing
/// convention of [`QpSolution`], while holding no constraint storage of its
/// own. Variable bounds are expressed as inequality rows (helpers
/// [`QpProblem::add_bounds`] build them for you).
///
/// # Example
///
/// ```
/// use ed_optim::qp::QpProblem;
///
/// # fn main() -> Result<(), ed_optim::OptimError> {
/// // min (x-1)^2 + (y-2)^2  s.t.  x + y = 2
/// // => min 0.5 x'(2I)x - 2x - 4y (+const)
/// let mut qp = QpProblem::new(2);
/// qp.set_quadratic_diag(&[2.0, 2.0]);
/// qp.set_linear(&[-2.0, -4.0]);
/// qp.add_eq(&[1.0, 1.0], 2.0);
/// let sol = qp.solve()?;
/// assert!((sol.x[0] - 0.5).abs() < 1e-8);
/// assert!((sol.x[1] - 1.5).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QpProblem {
    pub(crate) model: Model,
    /// Model row indices of equality rows, in `add_eq` order.
    pub(crate) eq_rows: Vec<usize>,
    /// Model row indices of inequality rows, in `add_ineq` order.
    pub(crate) ineq_rows: Vec<usize>,
}

/// Solution of a QP.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// Optimal point.
    pub x: Vec<f64>,
    /// Objective value `0.5 x'Hx + c'x` at the optimum.
    pub objective: f64,
    /// Multipliers of the equality rows (sign-free).
    pub eq_duals: Vec<f64>,
    /// Multipliers of the inequality rows (`>= 0`, zero when inactive).
    pub ineq_duals: Vec<f64>,
    /// Indices of inequality rows active at the optimum.
    pub active_set: Vec<usize>,
    /// Active-set iterations performed.
    pub iterations: usize,
}

/// Dense minimization view of a QP-capable [`Model`], the working format of
/// the active-set and interior-point kernels (both are dense `O(n^3)`
/// methods, so expanding the sparse columns once up front costs nothing).
///
/// Rows split by sense: `Eq` rows land in `a_eq`, `Le` rows in `a_in`,
/// `Ge` rows are negated into `a_in`, and finite variable bounds become
/// singleton `a_in` rows. `sign` records the original optimization sense
/// (+1 Min, −1 Max); `h`/`c` are pre-negated for Max so the kernels always
/// minimize.
#[derive(Debug, Clone)]
pub(crate) struct DenseQp {
    pub(crate) n: usize,
    pub(crate) h: Matrix,
    pub(crate) c: Vec<f64>,
    pub(crate) a_eq: Vec<Vec<f64>>,
    pub(crate) b_eq: Vec<f64>,
    pub(crate) a_in: Vec<Vec<f64>>,
    pub(crate) b_in: Vec<f64>,
    /// Model row index behind each `a_eq` row.
    pub(crate) eq_src: Vec<usize>,
    /// Provenance of each `a_in` row.
    pub(crate) ineq_src: Vec<IneqSrc>,
    /// +1 for a Min model, −1 for Max.
    pub(crate) sign: f64,
}

/// Where a dense inequality row came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IneqSrc {
    /// A model row (`negated` when it was a `Ge` row).
    Row {
        /// Model row index.
        row: usize,
        /// `true` when the row arrived as `>=` and was negated into `<=`.
        negated: bool,
    },
    /// Finite lower bound of a variable (`-x_j <= -lb`).
    Lower(usize),
    /// Finite upper bound of a variable (`x_j <= ub`).
    Upper(usize),
}

impl DenseQp {
    /// Expands a model into the dense minimization form.
    pub(crate) fn from_model(model: &Model) -> DenseQp {
        let n = model.num_vars();
        let sign = match model.sense {
            Sense::Min => 1.0,
            Sense::Max => -1.0,
        };
        let mut h = Matrix::zeros(n, n);
        for &(i, j, q) in model.quad_terms() {
            h[(i, j)] += sign * q;
        }
        let c: Vec<f64> = model.obj.iter().map(|&v| sign * v).collect();

        let mut a_eq = Vec::new();
        let mut b_eq = Vec::new();
        let mut eq_src = Vec::new();
        let mut a_in = Vec::new();
        let mut b_in = Vec::new();
        let mut ineq_src = Vec::new();
        for (i, row) in model.rows_view().into_iter().enumerate() {
            let mut dense = vec![0.0; n];
            for (j, v) in row {
                dense[j] += v;
            }
            match model.row_sense[i] {
                RowSense::Eq => {
                    a_eq.push(dense);
                    b_eq.push(model.rhs[i]);
                    eq_src.push(i);
                }
                RowSense::Le => {
                    a_in.push(dense);
                    b_in.push(model.rhs[i]);
                    ineq_src.push(IneqSrc::Row { row: i, negated: false });
                }
                RowSense::Ge => {
                    a_in.push(dense.iter().map(|v| -v).collect());
                    b_in.push(-model.rhs[i]);
                    ineq_src.push(IneqSrc::Row { row: i, negated: true });
                }
            }
        }
        for j in 0..n {
            if model.lb[j].is_finite() {
                let mut a = vec![0.0; n];
                a[j] = -1.0;
                a_in.push(a);
                b_in.push(-model.lb[j]);
                ineq_src.push(IneqSrc::Lower(j));
            }
            if model.ub[j].is_finite() {
                let mut a = vec![0.0; n];
                a[j] = 1.0;
                a_in.push(a);
                b_in.push(model.ub[j]);
                ineq_src.push(IneqSrc::Upper(j));
            }
        }
        DenseQp { n, h, c, a_eq, b_eq, a_in, b_in, eq_src, ineq_src, sign }
    }

    /// Objective value (of the minimization form) at a point.
    pub(crate) fn objective_value(&self, x: &[f64]) -> f64 {
        let hx = self.h.matvec(x).expect("shape checked");
        0.5 * ed_linalg::dot(x, &hx) + ed_linalg::dot(&self.c, x)
    }

    /// Maximum constraint violation at a point (0 means feasible).
    pub(crate) fn infeasibility(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0_f64;
        for (a, &b) in self.a_eq.iter().zip(&self.b_eq) {
            worst = worst.max((ed_linalg::dot(a, x) - b).abs());
        }
        for (a, &b) in self.a_in.iter().zip(&self.b_in) {
            worst = worst.max(ed_linalg::dot(a, x) - b);
        }
        worst.max(0.0)
    }
}

impl QpProblem {
    /// Creates a QP with `n` variables, zero objective and no constraints.
    pub fn new(n: usize) -> QpProblem {
        let mut model = Model::minimize();
        for _ in 0..n {
            model.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        }
        QpProblem { model, eq_rows: Vec::new(), ineq_rows: Vec::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    /// Number of equality rows.
    pub fn num_eq(&self) -> usize {
        self.eq_rows.len()
    }

    /// Number of inequality rows.
    pub fn num_ineq(&self) -> usize {
        self.ineq_rows.len()
    }

    /// Read access to the backing model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Sets the full Hessian `H` (must be `n x n`, symmetric PSD).
    ///
    /// # Panics
    ///
    /// Panics if the shape is not `n x n`.
    pub fn set_quadratic(&mut self, h: Matrix) {
        let n = self.num_vars();
        assert_eq!((h.rows(), h.cols()), (n, n), "Hessian shape mismatch");
        self.model.clear_quad();
        for i in 0..n {
            for j in 0..n {
                let v = h[(i, j)];
                if v != 0.0 {
                    self.model.add_quad(VarId(i), VarId(j), v);
                }
            }
        }
    }

    /// Sets a diagonal Hessian from its diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != n`.
    pub fn set_quadratic_diag(&mut self, diag: &[f64]) {
        let n = self.num_vars();
        assert_eq!(diag.len(), n, "diagonal length mismatch");
        self.model.clear_quad();
        for (j, &d) in diag.iter().enumerate() {
            if d != 0.0 {
                self.model.add_quad(VarId(j), VarId(j), d);
            }
        }
    }

    /// Sets the linear cost vector `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != n`.
    pub fn set_linear(&mut self, c: &[f64]) {
        assert_eq!(c.len(), self.num_vars(), "linear cost length mismatch");
        for (j, &v) in c.iter().enumerate() {
            self.model.set_objective_coef(VarId(j), v);
        }
    }

    /// Adds an equality row `a'x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn add_eq(&mut self, a: &[f64], b: f64) {
        assert_eq!(a.len(), self.num_vars(), "eq row length mismatch");
        let row = Row::eq(b).coefs(a.iter().enumerate().map(|(j, &c)| (VarId(j), c)));
        let id = self.model.add_row(row);
        self.eq_rows.push(id.index());
    }

    /// Adds an inequality row `a'x <= b` and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn add_ineq(&mut self, a: &[f64], b: f64) -> usize {
        assert_eq!(a.len(), self.num_vars(), "ineq row length mismatch");
        let row = Row::le(b).coefs(a.iter().enumerate().map(|(j, &c)| (VarId(j), c)));
        let id = self.model.add_row(row);
        self.ineq_rows.push(id.index());
        self.ineq_rows.len() - 1
    }

    /// Adds `lb <= x_j <= ub` as (up to) two inequality rows; infinite bounds
    /// are skipped. Returns the indices of the rows added
    /// (`(lower_row, upper_row)`).
    ///
    /// # Panics
    ///
    /// Panics if `j >= n`.
    pub fn add_bounds(&mut self, j: usize, lb: f64, ub: f64) -> (Option<usize>, Option<usize>) {
        let n = self.num_vars();
        assert!(j < n, "variable index out of range");
        let mut lo = None;
        let mut hi = None;
        if lb.is_finite() {
            let mut a = vec![0.0; n];
            a[j] = -1.0;
            lo = Some(self.add_ineq(&a, -lb));
        }
        if ub.is_finite() {
            let mut a = vec![0.0; n];
            a[j] = 1.0;
            hi = Some(self.add_ineq(&a, ub));
        }
        (lo, hi)
    }

    /// Objective value at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.model.objective_value(x)
    }

    /// Maximum constraint violation at a point (0 means feasible).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn infeasibility(&self, x: &[f64]) -> f64 {
        self.model.infeasibility(x)
    }

    /// Expands the backing model into the dense solver view. Because every
    /// variable here has infinite bounds and rows arrive through
    /// `add_eq`/`add_ineq`, the dense eq/ineq row order matches the
    /// historical `QpSolution` dual indexing exactly.
    pub(crate) fn dense(&self) -> DenseQp {
        DenseQp::from_model(&self.model)
    }

    /// Solves with default options.
    ///
    /// # Errors
    ///
    /// - [`OptimError::Infeasible`] if the constraints admit no point.
    /// - [`OptimError::IterationLimit`] / [`OptimError::Numerical`] on
    ///   solver trouble (e.g. `H` not PSD on the feasible set).
    pub fn solve(&self) -> Result<QpSolution, OptimError> {
        self.solve_with(&QpOptions::default())
    }

    /// Solves with explicit options.
    ///
    /// # Errors
    ///
    /// Same as [`QpProblem::solve`].
    pub fn solve_with(&self, options: &QpOptions) -> Result<QpSolution, OptimError> {
        use crate::qp::QpMethod;
        let qp = self.dense();
        match options.method {
            QpMethod::ActiveSet => active_set::solve(&qp, options),
            QpMethod::InteriorPoint => crate::qp::ipm::solve(&qp, &options.ipm),
            QpMethod::Auto => match active_set::solve(&qp, options) {
                Ok(sol) => Ok(sol),
                // Degenerate stalls and numerical breakdowns route to the
                // interior-point method; genuine infeasibility does not.
                Err(OptimError::IterationLimit { .. }) | Err(OptimError::Numerical { .. }) => {
                    crate::qp::ipm::solve(&qp, &options.ipm)
                }
                Err(e) => Err(e),
            },
        }
    }

    /// Solves under a cooperative [`SolveBudget`]. Exhausting the budget
    /// returns [`SolveOutcome::Partial`]: for the active-set method the
    /// partial carries the current (feasible) iterate; interior-point
    /// partials carry `x: None` because mid-run interior iterates violate
    /// the constraints. Under [`crate::qp::QpMethod::Auto`], a stalled
    /// active-set pass falls through to the interior-point method only if
    /// wall-clock budget remains, and the active-set incumbent is kept when
    /// the fallback cannot finish either.
    ///
    /// # Errors
    ///
    /// Same as [`QpProblem::solve`], except budget exhaustion is reported
    /// as a partial outcome rather than an error.
    pub fn solve_budgeted(
        &self,
        options: &QpOptions,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<QpSolution>, OptimError> {
        use crate::qp::QpMethod;
        let qp = self.dense();
        match options.method {
            QpMethod::ActiveSet => active_set::solve_budgeted(&qp, options, budget),
            QpMethod::InteriorPoint => crate::qp::ipm::solve_budgeted(&qp, &options.ipm, budget),
            QpMethod::Auto => match active_set::solve_budgeted(&qp, options, budget) {
                Ok(SolveOutcome::Solved(sol)) => Ok(SolveOutcome::Solved(sol)),
                Ok(SolveOutcome::Partial(p)) => {
                    if budget.wall_tripped().is_some() {
                        return Ok(SolveOutcome::Partial(p));
                    }
                    match crate::qp::ipm::solve_budgeted(&qp, &options.ipm, budget) {
                        Ok(SolveOutcome::Solved(sol)) => Ok(SolveOutcome::Solved(sol)),
                        // The active-set partial carries a feasible iterate;
                        // prefer it over an infeasible interior partial.
                        _ => Ok(SolveOutcome::Partial(p)),
                    }
                }
                Err(OptimError::IterationLimit { .. }) | Err(OptimError::Numerical { .. }) => {
                    crate::qp::ipm::solve_budgeted(&qp, &options.ipm, budget)
                }
                Err(e) => Err(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_minimum() {
        // min (x-3)^2 -> x = 3
        let mut qp = QpProblem::new(1);
        qp.set_quadratic_diag(&[2.0]);
        qp.set_linear(&[-6.0]);
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 3.0).abs() < 1e-9);
        assert_eq!(s.active_set.len(), 0);
    }

    #[test]
    fn bound_becomes_active() {
        // min (x-3)^2 with x <= 1 -> x = 1, multiplier 4
        let mut qp = QpProblem::new(1);
        qp.set_quadratic_diag(&[2.0]);
        qp.set_linear(&[-6.0]);
        let up = qp.add_ineq(&[1.0], 1.0);
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-8);
        assert!((s.ineq_duals[up] - 4.0).abs() < 1e-6, "lambda={}", s.ineq_duals[up]);
    }

    #[test]
    fn equality_projection() {
        // min x^2 + y^2 st x + y = 2 -> (1,1), eq dual = -2 (for a'x = b with
        // stationarity Hx + c + A'nu = 0).
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[2.0, 2.0]);
        qp.add_eq(&[1.0, 1.0], 2.0);
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-8 && (s.x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible_reported() {
        let mut qp = QpProblem::new(1);
        qp.set_quadratic_diag(&[2.0]);
        qp.add_ineq(&[1.0], 0.0); // x <= 0
        qp.add_ineq(&[-1.0], -1.0); // x >= 1
        assert!(matches!(qp.solve(), Err(OptimError::Infeasible)));
    }

    #[test]
    fn objective_value_matches() {
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[2.0, 4.0]);
        qp.set_linear(&[1.0, -1.0]);
        let v = qp.objective_value(&[1.0, 2.0]);
        // 0.5*(2*1 + 4*4) + (1 - 2) = 9 - 1 = 8
        assert!((v - 8.0).abs() < 1e-12);
    }

    #[test]
    fn wrapper_holds_no_constraint_storage() {
        // The model carries the rows; the wrapper only tracks index maps.
        let mut qp = QpProblem::new(2);
        qp.add_eq(&[1.0, 1.0], 2.0);
        qp.add_ineq(&[1.0, 0.0], 1.5);
        assert_eq!(qp.model().num_rows(), 2);
        assert_eq!(qp.num_eq(), 1);
        assert_eq!(qp.num_ineq(), 1);
        let d = qp.dense();
        assert_eq!(d.a_eq.len(), 1);
        assert_eq!(d.a_in.len(), 1);
        assert_eq!(d.eq_src, vec![0]);
        assert_eq!(d.ineq_src, vec![IneqSrc::Row { row: 1, negated: false }]);
    }

    #[test]
    fn dense_view_negates_ge_rows_and_expands_bounds() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 2.0, 1.0);
        m.add_quad(x, x, 2.0);
        m.add_row(Row::ge(0.5).coef(x, 1.0));
        let d = DenseQp::from_model(&m);
        assert_eq!(d.a_eq.len(), 0);
        // Ge row negated + two bound rows.
        assert_eq!(d.a_in.len(), 3);
        assert_eq!(d.a_in[0], vec![-1.0]);
        assert_eq!(d.b_in[0], -0.5);
        assert_eq!(d.ineq_src[1], IneqSrc::Lower(0));
        assert_eq!(d.ineq_src[2], IneqSrc::Upper(0));
    }
}
