//! QP model and solution types.

use crate::budget::{SolveBudget, SolveOutcome};
use crate::qp::active_set::{self, QpOptions};
use crate::OptimError;
use ed_linalg::Matrix;

/// A convex quadratic program `min 0.5 x'Hx + c'x` subject to linear
/// equalities and inequalities.
///
/// Variable bounds are expressed as inequality rows (helpers
/// [`QpProblem::add_bounds`] build them for you).
///
/// # Example
///
/// ```
/// use ed_optim::qp::QpProblem;
///
/// # fn main() -> Result<(), ed_optim::OptimError> {
/// // min (x-1)^2 + (y-2)^2  s.t.  x + y = 2
/// // => min 0.5 x'(2I)x - 2x - 4y (+const)
/// let mut qp = QpProblem::new(2);
/// qp.set_quadratic_diag(&[2.0, 2.0]);
/// qp.set_linear(&[-2.0, -4.0]);
/// qp.add_eq(&[1.0, 1.0], 2.0);
/// let sol = qp.solve()?;
/// assert!((sol.x[0] - 0.5).abs() < 1e-8);
/// assert!((sol.x[1] - 1.5).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QpProblem {
    pub(crate) n: usize,
    pub(crate) h: Matrix,
    pub(crate) c: Vec<f64>,
    pub(crate) a_eq: Vec<Vec<f64>>,
    pub(crate) b_eq: Vec<f64>,
    pub(crate) a_in: Vec<Vec<f64>>,
    pub(crate) b_in: Vec<f64>,
}

/// Solution of a QP.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// Optimal point.
    pub x: Vec<f64>,
    /// Objective value `0.5 x'Hx + c'x` at the optimum.
    pub objective: f64,
    /// Multipliers of the equality rows (sign-free).
    pub eq_duals: Vec<f64>,
    /// Multipliers of the inequality rows (`>= 0`, zero when inactive).
    pub ineq_duals: Vec<f64>,
    /// Indices of inequality rows active at the optimum.
    pub active_set: Vec<usize>,
    /// Active-set iterations performed.
    pub iterations: usize,
}

impl QpProblem {
    /// Creates a QP with `n` variables, zero objective and no constraints.
    pub fn new(n: usize) -> QpProblem {
        QpProblem {
            n,
            h: Matrix::zeros(n, n),
            c: vec![0.0; n],
            a_eq: Vec::new(),
            b_eq: Vec::new(),
            a_in: Vec::new(),
            b_in: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of equality rows.
    pub fn num_eq(&self) -> usize {
        self.a_eq.len()
    }

    /// Number of inequality rows.
    pub fn num_ineq(&self) -> usize {
        self.a_in.len()
    }

    /// Sets the full Hessian `H` (must be `n x n`, symmetric PSD).
    ///
    /// # Panics
    ///
    /// Panics if the shape is not `n x n`.
    pub fn set_quadratic(&mut self, h: Matrix) {
        assert_eq!((h.rows(), h.cols()), (self.n, self.n), "Hessian shape mismatch");
        self.h = h;
    }

    /// Sets a diagonal Hessian from its diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != n`.
    pub fn set_quadratic_diag(&mut self, diag: &[f64]) {
        assert_eq!(diag.len(), self.n, "diagonal length mismatch");
        self.h = Matrix::from_diag(diag);
    }

    /// Sets the linear cost vector `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != n`.
    pub fn set_linear(&mut self, c: &[f64]) {
        assert_eq!(c.len(), self.n, "linear cost length mismatch");
        self.c = c.to_vec();
    }

    /// Adds an equality row `a'x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn add_eq(&mut self, a: &[f64], b: f64) {
        assert_eq!(a.len(), self.n, "eq row length mismatch");
        self.a_eq.push(a.to_vec());
        self.b_eq.push(b);
    }

    /// Adds an inequality row `a'x <= b` and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn add_ineq(&mut self, a: &[f64], b: f64) -> usize {
        assert_eq!(a.len(), self.n, "ineq row length mismatch");
        self.a_in.push(a.to_vec());
        self.b_in.push(b);
        self.a_in.len() - 1
    }

    /// Adds `lb <= x_j <= ub` as (up to) two inequality rows; infinite bounds
    /// are skipped. Returns the indices of the rows added
    /// (`(lower_row, upper_row)`).
    ///
    /// # Panics
    ///
    /// Panics if `j >= n`.
    pub fn add_bounds(&mut self, j: usize, lb: f64, ub: f64) -> (Option<usize>, Option<usize>) {
        assert!(j < self.n, "variable index out of range");
        let mut lo = None;
        let mut hi = None;
        if lb.is_finite() {
            let mut a = vec![0.0; self.n];
            a[j] = -1.0;
            lo = Some(self.add_ineq(&a, -lb));
        }
        if ub.is_finite() {
            let mut a = vec![0.0; self.n];
            a[j] = 1.0;
            hi = Some(self.add_ineq(&a, ub));
        }
        (lo, hi)
    }

    /// Objective value at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n);
        let hx = self.h.matvec(x).expect("shape checked");
        0.5 * ed_linalg::dot(x, &hx) + ed_linalg::dot(&self.c, x)
    }

    /// Maximum constraint violation at a point (0 means feasible).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn infeasibility(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0_f64;
        for (a, &b) in self.a_eq.iter().zip(&self.b_eq) {
            worst = worst.max((ed_linalg::dot(a, x) - b).abs());
        }
        for (a, &b) in self.a_in.iter().zip(&self.b_in) {
            worst = worst.max(ed_linalg::dot(a, x) - b);
        }
        worst.max(0.0)
    }

    /// Solves with default options.
    ///
    /// # Errors
    ///
    /// - [`OptimError::Infeasible`] if the constraints admit no point.
    /// - [`OptimError::IterationLimit`] / [`OptimError::Numerical`] on
    ///   solver trouble (e.g. `H` not PSD on the feasible set).
    pub fn solve(&self) -> Result<QpSolution, OptimError> {
        self.solve_with(&QpOptions::default())
    }

    /// Solves with explicit options.
    ///
    /// # Errors
    ///
    /// Same as [`QpProblem::solve`].
    pub fn solve_with(&self, options: &QpOptions) -> Result<QpSolution, OptimError> {
        use crate::qp::QpMethod;
        match options.method {
            QpMethod::ActiveSet => active_set::solve(self, options),
            QpMethod::InteriorPoint => crate::qp::ipm::solve(self, &options.ipm),
            QpMethod::Auto => match active_set::solve(self, options) {
                Ok(sol) => Ok(sol),
                // Degenerate stalls and numerical breakdowns route to the
                // interior-point method; genuine infeasibility does not.
                Err(OptimError::IterationLimit { .. }) | Err(OptimError::Numerical { .. }) => {
                    crate::qp::ipm::solve(self, &options.ipm)
                }
                Err(e) => Err(e),
            },
        }
    }

    /// Solves under a cooperative [`SolveBudget`]. Exhausting the budget
    /// returns [`SolveOutcome::Partial`]: for the active-set method the
    /// partial carries the current (feasible) iterate; interior-point
    /// partials carry `x: None` because mid-run interior iterates violate
    /// the constraints. Under [`crate::qp::QpMethod::Auto`], a stalled
    /// active-set pass falls through to the interior-point method only if
    /// wall-clock budget remains, and the active-set incumbent is kept when
    /// the fallback cannot finish either.
    ///
    /// # Errors
    ///
    /// Same as [`QpProblem::solve`], except budget exhaustion is reported
    /// as a partial outcome rather than an error.
    pub fn solve_budgeted(
        &self,
        options: &QpOptions,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<QpSolution>, OptimError> {
        use crate::qp::QpMethod;
        match options.method {
            QpMethod::ActiveSet => active_set::solve_budgeted(self, options, budget),
            QpMethod::InteriorPoint => crate::qp::ipm::solve_budgeted(self, &options.ipm, budget),
            QpMethod::Auto => match active_set::solve_budgeted(self, options, budget) {
                Ok(SolveOutcome::Solved(sol)) => Ok(SolveOutcome::Solved(sol)),
                Ok(SolveOutcome::Partial(p)) => {
                    if budget.wall_tripped().is_some() {
                        return Ok(SolveOutcome::Partial(p));
                    }
                    match crate::qp::ipm::solve_budgeted(self, &options.ipm, budget) {
                        Ok(SolveOutcome::Solved(sol)) => Ok(SolveOutcome::Solved(sol)),
                        // The active-set partial carries a feasible iterate;
                        // prefer it over an infeasible interior partial.
                        _ => Ok(SolveOutcome::Partial(p)),
                    }
                }
                Err(OptimError::IterationLimit { .. }) | Err(OptimError::Numerical { .. }) => {
                    crate::qp::ipm::solve_budgeted(self, &options.ipm, budget)
                }
                Err(e) => Err(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_minimum() {
        // min (x-3)^2 -> x = 3
        let mut qp = QpProblem::new(1);
        qp.set_quadratic_diag(&[2.0]);
        qp.set_linear(&[-6.0]);
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 3.0).abs() < 1e-9);
        assert_eq!(s.active_set.len(), 0);
    }

    #[test]
    fn bound_becomes_active() {
        // min (x-3)^2 with x <= 1 -> x = 1, multiplier 4
        let mut qp = QpProblem::new(1);
        qp.set_quadratic_diag(&[2.0]);
        qp.set_linear(&[-6.0]);
        let up = qp.add_ineq(&[1.0], 1.0);
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-8);
        assert!((s.ineq_duals[up] - 4.0).abs() < 1e-6, "lambda={}", s.ineq_duals[up]);
    }

    #[test]
    fn equality_projection() {
        // min x^2 + y^2 st x + y = 2 -> (1,1), eq dual = -2 (for a'x = b with
        // stationarity Hx + c + A'nu = 0).
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[2.0, 2.0]);
        qp.add_eq(&[1.0, 1.0], 2.0);
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-8 && (s.x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible_reported() {
        let mut qp = QpProblem::new(1);
        qp.set_quadratic_diag(&[2.0]);
        qp.add_ineq(&[1.0], 0.0); // x <= 0
        qp.add_ineq(&[-1.0], -1.0); // x >= 1
        assert!(matches!(qp.solve(), Err(OptimError::Infeasible)));
    }

    #[test]
    fn objective_value_matches() {
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[2.0, 4.0]);
        qp.set_linear(&[1.0, -1.0]);
        let v = qp.objective_value(&[1.0, 2.0]);
        // 0.5*(2*1 + 4*4) + (1 - 2) = 9 - 1 = 8
        assert!((v - 8.0).abs() < 1e-12);
    }
}
