//! Primal active-set method for convex QP.

use crate::budget::{Partial, SolveBudget, SolveOutcome};
use crate::lp::{LpProblem, Row};
use crate::qp::problem::{DenseQp, IneqSrc, QpSolution};
use crate::OptimError;
use ed_linalg::{dot, Lu, Matrix};

/// Options for the QP solvers.
#[derive(Debug, Clone)]
pub struct QpOptions {
    /// Algorithm selection (see [`crate::qp::QpMethod`]).
    pub method: crate::qp::QpMethod,
    /// Maximum active-set iterations.
    pub max_iterations: usize,
    /// Constraint feasibility / activity tolerance.
    pub feas_tol: f64,
    /// Step-size tolerance below which a step is considered zero.
    pub step_tol: f64,
    /// Dual regularization added to the KKT system's lower-right block to
    /// survive (near-)dependent working sets.
    pub kkt_regularization: f64,
    /// Interior-point fallback options.
    pub ipm: crate::qp::IpmOptions,
    /// Preferred inequality indices (dense-view order) to seed the working
    /// set with — e.g. the rows a warm LP basis held tight. Hinted indices
    /// not actually active at the phase-1 start are ignored, so a stale
    /// hint can cost iterations but never changes the answer.
    pub warm_active: Option<Vec<usize>>,
}

impl Default for QpOptions {
    fn default() -> Self {
        let tol = crate::certify::Tolerances::default();
        QpOptions {
            method: crate::qp::QpMethod::Auto,
            max_iterations: 200,
            feas_tol: tol.feas,
            step_tol: tol.opt,
            kkt_regularization: 1e-12,
            ipm: crate::qp::IpmOptions::default(),
            warm_active: None,
        }
    }
}

/// Finds a feasible starting point with a phase-1 LP.
///
/// The LP minimizes the QP's *linear* cost term instead of zero: the
/// returned vertex then sits near the region the quadratic optimum lives
/// in, which keeps the subsequent active-set path short (a zero-objective
/// start can land at an arbitrary far-away vertex and force thousands of
/// zigzag steps across a congested polytope).
///
/// Bound-derived inequality rows are folded back into *variable bounds*:
/// the bounded-variable simplex treats a box with ratio-test bound flips,
/// whereas the same box written as `2n` singleton rows costs hundreds of
/// extra pivots (and a basis of twice the size) on dispatch-shaped QPs.
fn feasible_start(qp: &DenseQp) -> Result<Vec<f64>, OptimError> {
    let mut lp = LpProblem::minimize();
    let mut lb = vec![f64::NEG_INFINITY; qp.n];
    let mut ub = vec![f64::INFINITY; qp.n];
    for (k, src) in qp.ineq_src.iter().enumerate() {
        match *src {
            IneqSrc::Lower(j) => lb[j] = -qp.b_in[k],
            IneqSrc::Upper(j) => ub[j] = qp.b_in[k],
            IneqSrc::Row { .. } => {}
        }
    }
    let vars: Vec<_> = (0..qp.n).map(|j| lp.add_var(lb[j], ub[j], qp.c[j])).collect();
    for (a, &b) in qp.a_eq.iter().zip(&qp.b_eq) {
        lp.add_row(Row::eq(b).coefs(vars.iter().zip(a).map(|(&v, &c)| (v, c))));
    }
    for ((a, &b), src) in qp.a_in.iter().zip(&qp.b_in).zip(&qp.ineq_src) {
        if matches!(src, IneqSrc::Row { .. }) {
            lp.add_row(Row::le(b).coefs(vars.iter().zip(a).map(|(&v, &c)| (v, c))));
        }
    }
    match lp.solve() {
        Ok(sol) => Ok(sol.x),
        // The linear guide cost may be unbounded where only the quadratic
        // term caps the objective; any feasible point still serves.
        Err(OptimError::Unbounded) => {
            let mut feas = lp.clone();
            feas.clear_objective();
            Ok(feas.solve()?.x)
        }
        Err(e) => Err(e),
    }
}

/// Solves the equality-constrained QP step at `x` for working set `w`.
///
/// Returns `(p, eq_duals, w_duals)` where `p` minimizes the quadratic model
/// subject to `A_eq p = 0` and `a_i' p = 0` for `i` in `w`.
/// `(step direction, equality duals, working-set duals)` from one KKT solve.
type EqpStep = (Vec<f64>, Vec<f64>, Vec<f64>);

fn eqp_step(qp: &DenseQp, x: &[f64], w: &[usize], reg: f64) -> Result<EqpStep, OptimError> {
    let n = qp.n;
    let me = qp.a_eq.len();
    let mw = w.len();
    let dim = n + me + mw;
    let mut kkt = Matrix::zeros(dim, dim);
    for i in 0..n {
        for j in 0..n {
            kkt[(i, j)] = qp.h[(i, j)];
        }
    }
    for (r, a) in qp.a_eq.iter().enumerate() {
        for j in 0..n {
            kkt[(n + r, j)] = a[j];
            kkt[(j, n + r)] = a[j];
        }
    }
    for (r, &wi) in w.iter().enumerate() {
        let a = &qp.a_in[wi];
        for j in 0..n {
            kkt[(n + me + r, j)] = a[j];
            kkt[(j, n + me + r)] = a[j];
        }
    }
    for r in 0..(me + mw) {
        kkt[(n + r, n + r)] = -reg;
    }
    // Gradient g = Hx + c.
    let hx = qp.h.matvec(x)?;
    let mut rhs = vec![0.0; dim];
    for j in 0..n {
        rhs[j] = -(hx[j] + qp.c[j]);
    }
    let lu = Lu::factor(&kkt).map_err(|e| OptimError::Numerical {
        what: format!("KKT factorization failed (working set size {mw}): {e}"),
    })?;
    let sol = lu.solve(&rhs)?;
    let p = sol[..n].to_vec();
    let eq_duals = sol[n..n + me].to_vec();
    let w_duals = sol[n + me..].to_vec();
    Ok((p, eq_duals, w_duals))
}

/// Entry point used by [`QpProblem::solve_with`]: runs the active-set
/// method, retrying with tiny deterministic right-hand-side perturbations
/// if degeneracy stalls it (heavily-tied vertices can cycle; perturbation
/// breaks the ties, and the perturbed optimum is within the perturbation
/// magnitude of the true one).
pub(crate) fn solve(qp: &DenseQp, options: &QpOptions) -> Result<QpSolution, OptimError> {
    match solve_budgeted(qp, options, &SolveBudget::unlimited())? {
        SolveOutcome::Solved(sol) => Ok(sol),
        SolveOutcome::Partial(_) => unreachable!("an unlimited budget cannot trip"),
    }
}

/// Budgeted entry point (used by [`QpProblem::solve_budgeted`]). A budget
/// trip mid-iteration returns the current iterate, which the active-set
/// method keeps primal feasible throughout — so the partial incumbent is
/// always usable as a dispatch.
pub(crate) fn solve_budgeted(
    qp: &DenseQp,
    options: &QpOptions,
    budget: &SolveBudget,
) -> Result<SolveOutcome<QpSolution>, OptimError> {
    let _t = ed_obs::timer("optim.activeset");
    let out = solve_budgeted_inner(qp, options, budget);
    if ed_obs::enabled() {
        let iterations = match &out {
            Ok(SolveOutcome::Solved(s)) => s.iterations,
            Ok(SolveOutcome::Partial(p)) => p.iterations,
            Err(_) => 0,
        };
        ed_obs::counter("optim.activeset.solves", 1);
        ed_obs::counter("optim.activeset.iterations", iterations as u64);
    }
    out
}

fn solve_budgeted_inner(
    qp: &DenseQp,
    options: &QpOptions,
    budget: &SolveBudget,
) -> Result<SolveOutcome<QpSolution>, OptimError> {
    match solve_once(qp, options, budget) {
        Ok(out) => Ok(out),
        Err(first @ (OptimError::IterationLimit { .. } | OptimError::Numerical { .. })) => {
            let scale = 1.0 + ed_linalg::norm_inf(&qp.b_in);
            let mut last_err = first;
            for magnitude in [1e-7, 1e-5] {
                if let Some(tripped) = budget.wall_tripped() {
                    // No time left for perturbation retries: surface the best
                    // feasible iterate the failed pass retained, if any.
                    return Ok(SolveOutcome::Partial(partial_from_limit(
                        qp, &last_err, tripped, options,
                    )));
                }
                let mut perturbed = qp.clone();
                // Deterministic per-row jitter (splitmix-style hash).
                for (i, b) in perturbed.b_in.iter_mut().enumerate() {
                    let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    let u = ((z >> 11) as f64) / (1u64 << 53) as f64; // [0,1)
                    *b += magnitude * scale * (0.5 + u);
                }
                match solve_once(&perturbed, options, budget) {
                    Ok(SolveOutcome::Solved(sol)) => {
                        return Ok(SolveOutcome::Solved(QpSolution {
                            objective: qp.objective_value(&sol.x),
                            ..sol
                        }))
                    }
                    Ok(SolveOutcome::Partial(mut p)) => {
                        // Re-price the perturbed iterate on the true problem.
                        p.objective = p.x.as_deref().map(|x| qp.objective_value(x));
                        return Ok(SolveOutcome::Partial(p));
                    }
                    Err(e) => last_err = e,
                }
            }
            Err(last_err)
        }
        Err(e) => Err(e),
    }
}

/// Builds a [`Partial`] from a failed pass, recovering the feasible
/// incumbent an [`OptimError::IterationLimit`] now carries.
fn partial_from_limit(
    qp: &DenseQp,
    err: &OptimError,
    tripped: crate::budget::BudgetTripped,
    options: &QpOptions,
) -> Partial {
    let x = match err {
        OptimError::IterationLimit { incumbent, .. } => incumbent.clone(),
        _ => None,
    };
    let objective = x.as_deref().map(|x| qp.objective_value(x));
    Partial {
        tripped,
        x,
        objective,
        bound: None,
        iterations: options.max_iterations,
        nodes: 0,
    }
}

fn solve_once(
    qp: &DenseQp,
    options: &QpOptions,
    budget: &SolveBudget,
) -> Result<SolveOutcome<QpSolution>, OptimError> {
    let n = qp.n;
    let mut x = feasible_start(qp)?;
    debug_assert!(qp.infeasibility(&x) <= 1e-6, "phase-1 start infeasible");

    // Working set: start from the inequality constraints active at the
    // phase-1 vertex, added greedily (dependent rows are tolerated thanks to
    // KKT regularization, but we cap the working set at n - me rows). A warm
    // hint reorders the greedy pass so the rows a previous basis held tight
    // claim their working-set slots first.
    let me = qp.a_eq.len();
    let mut w: Vec<usize> = Vec::new();
    let active = |i: usize| (dot(&qp.a_in[i], &x) - qp.b_in[i]).abs() <= options.feas_tol;
    if let Some(hint) = &options.warm_active {
        for &i in hint {
            if i < qp.a_in.len() && active(i) && !w.contains(&i) && w.len() + me < n {
                w.push(i);
            }
        }
    }
    for i in 0..qp.a_in.len() {
        if active(i) && !w.contains(&i) && w.len() + me < n {
            w.push(i);
        }
    }

    let mut iterations = 0usize;
    // Anti-cycling: a constraint dropped at a degenerate point must not be
    // re-added until a nonzero step has been taken, otherwise the method
    // can oscillate between adding and dropping the same row.
    let mut blocked_readd: Option<usize> = None;
    loop {
        if !budget.is_unlimited() {
            if let Some(tripped) = budget.iter_tripped(iterations) {
                // Active-set iterates stay primal feasible: the current x is
                // a usable (suboptimal) dispatch, not garbage.
                let objective = qp.objective_value(&x);
                return Ok(SolveOutcome::Partial(Partial {
                    tripped,
                    x: Some(x),
                    objective: Some(objective),
                    bound: None,
                    iterations,
                    nodes: 0,
                }));
            }
        }
        if iterations >= options.max_iterations {
            return Err(OptimError::IterationLimit {
                limit: options.max_iterations,
                incumbent: Some(x),
            });
        }
        iterations += 1;

        let (p, eq_duals, w_duals) = match eqp_step(qp, &x, &w, options.kkt_regularization) {
            Ok(v) => v,
            Err(OptimError::Numerical { .. }) if !w.is_empty() => {
                // Dependent working set: drop the most recently added row
                // and retry on the next loop iteration.
                w.pop();
                continue;
            }
            Err(e) => return Err(e),
        };

        if std::env::var_os("ED_QP_TRACE").is_some() && iterations.is_multiple_of(50) {
            eprintln!(
                "iter {iterations}: |W|={} obj={:.6}",
                w.len(),
                qp.objective_value(&x)
            );
        }
        let p_norm = ed_linalg::norm_inf(&p);
        if p_norm <= options.step_tol * (1.0 + ed_linalg::norm_inf(&x)) {
            // Candidate optimum: check working-set multipliers.
            let mut min_dual = f64::INFINITY;
            let mut min_idx = None;
            for (k, &lam) in w_duals.iter().enumerate() {
                if lam < min_dual {
                    min_dual = lam;
                    min_idx = Some(k);
                }
            }
            if min_dual >= -1e-7 || min_idx.is_none() {
                // Optimal.
                let mut ineq_duals = vec![0.0; qp.a_in.len()];
                for (k, &wi) in w.iter().enumerate() {
                    ineq_duals[wi] = w_duals[k].max(0.0);
                }
                let objective = qp.objective_value(&x);
                return Ok(SolveOutcome::Solved(QpSolution {
                    x,
                    objective,
                    eq_duals,
                    ineq_duals,
                    active_set: w,
                    iterations,
                }));
            }
            // Drop the most negative multiplier and continue.
            let dropped = w.remove(min_idx.expect("checked above"));
            blocked_readd = Some(dropped);
            continue;
        }

        // Ratio test against inactive inequality constraints.
        let mut alpha = 1.0_f64;
        let mut blocking = None;
        for (i, (a, &b)) in qp.a_in.iter().zip(&qp.b_in).enumerate() {
            if w.contains(&i) || blocked_readd == Some(i) {
                continue;
            }
            let ap = dot(a, &p);
            if ap > options.feas_tol {
                let slack = b - dot(a, &x);
                let t = (slack / ap).max(0.0);
                if t < alpha {
                    alpha = t;
                    blocking = Some(i);
                }
            }
        }

        for (xi, pi) in x.iter_mut().zip(&p) {
            *xi += alpha * pi;
        }
        if alpha > options.step_tol {
            blocked_readd = None;
        }
        if let Some(bi) = blocking {
            if alpha < 1.0 {
                w.push(bi);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::qp::QpProblem;

    /// Nocedal & Wright example 16.4: min (x1-1)^2 + (x2-2.5)^2 with five
    /// inequality constraints; optimum at (1.4, 1.7).
    #[test]
    fn nocedal_wright_16_4() {
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[2.0, 2.0]);
        qp.set_linear(&[-2.0, -5.0]);
        qp.add_ineq(&[-1.0, 2.0], 2.0);
        qp.add_ineq(&[1.0, 2.0], 6.0);
        qp.add_ineq(&[1.0, -2.0], 2.0);
        qp.add_ineq(&[-1.0, 0.0], 0.0);
        qp.add_ineq(&[0.0, -1.0], 0.0);
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 1.4).abs() < 1e-7, "x={:?}", s.x);
        assert!((s.x[1] - 1.7).abs() < 1e-7, "x={:?}", s.x);
    }

    /// Economic-dispatch shaped QP: two quadratic generators, one balance
    /// equality, box bounds. Equal marginal cost at optimum.
    #[test]
    fn dispatch_shaped() {
        // C1 = 0.01 p1^2 + 10 p1, C2 = 0.02 p2^2 + 8 p2, p1 + p2 = 200.
        // Unconstrained equal-lambda: 0.02 p1 + 10 = 0.04 p2 + 8
        // with p1 + p2 = 200 -> 0.02p1 - 0.04(200 - p1) + 2 = 0
        // 0.06 p1 = 6 -> p1 = 100, p2 = 100.
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[0.02, 0.04]);
        qp.set_linear(&[10.0, 8.0]);
        qp.add_eq(&[1.0, 1.0], 200.0);
        qp.add_bounds(0, 0.0, 300.0);
        qp.add_bounds(1, 0.0, 300.0);
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 100.0).abs() < 1e-6, "{:?}", s.x);
        assert!((s.x[1] - 100.0).abs() < 1e-6, "{:?}", s.x);
        // Balance dual = -(marginal cost) under Hx + c + A'nu = 0 convention.
        let lambda = -s.eq_duals[0];
        assert!((lambda - 12.0).abs() < 1e-6, "lambda={lambda}");
    }

    /// Binding generator limit forces redistribution.
    #[test]
    fn dispatch_with_binding_limit() {
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[0.02, 0.04]);
        qp.set_linear(&[10.0, 8.0]);
        qp.add_eq(&[1.0, 1.0], 200.0);
        qp.add_bounds(0, 0.0, 80.0); // p1 capped below its unconstrained share
        qp.add_bounds(1, 0.0, 300.0);
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 80.0).abs() < 1e-6, "{:?}", s.x);
        assert!((s.x[1] - 120.0).abs() < 1e-6, "{:?}", s.x);
    }

    /// Redundant (duplicate) constraints must not break the solver.
    #[test]
    fn tolerates_redundant_rows() {
        let mut qp = QpProblem::new(2);
        qp.set_quadratic_diag(&[2.0, 2.0]);
        qp.set_linear(&[-2.0, -2.0]);
        qp.add_ineq(&[1.0, 0.0], 0.5);
        qp.add_ineq(&[1.0, 0.0], 0.5); // duplicate
        qp.add_ineq(&[2.0, 0.0], 1.0); // scaled duplicate
        let s = qp.solve().unwrap();
        assert!((s.x[0] - 0.5).abs() < 1e-7 && (s.x[1] - 1.0).abs() < 1e-7, "{:?}", s.x);
    }
}
