//! Convex quadratic programming via a primal active-set method.
//!
//! Solves
//!
//! ```text
//! min  0.5 x' H x + c' x
//! s.t. A_eq x  = b_eq
//!      A_in x <= b_in
//! ```
//!
//! with `H` symmetric positive semidefinite (positive definite on the null
//! space of the active constraints — true for economic dispatch with strictly
//! convex generator costs and a fixed reference angle).
//!
//! A feasible starting point is obtained from a phase-1 LP solved with the
//! crate's simplex method; the active-set loop then alternates
//! equality-constrained QP steps (dense KKT solves) with blocking-constraint
//! additions and multiplier-driven deletions.

pub(crate) mod active_set;
pub(crate) mod ipm;
pub(crate) mod problem;

pub use active_set::QpOptions;
pub use ipm::IpmOptions;
pub use problem::{QpProblem, QpSolution};

/// Which algorithm solves the QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QpMethod {
    /// Active set first; fall back to interior point if it stalls on a
    /// degenerate vertex. The recommended default.
    #[default]
    Auto,
    /// Primal active-set method only (crisp active sets, exact vertices).
    ActiveSet,
    /// Primal-dual interior-point method only (robust on degenerate
    /// problems).
    InteriorPoint,
}
