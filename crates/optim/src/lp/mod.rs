//! Linear programming: problem builder and a bounded-variable two-phase
//! revised simplex solver.
//!
//! The solver handles general bounds `l <= x <= u` (including infinite and
//! fixed bounds), `<=`/`>=`/`==` rows, minimization and maximization, and
//! reports primal values, row duals, reduced costs, and a basis summary.
//!
//! See [`LpProblem`] for the entry point.

mod problem;
mod simplex;

pub use problem::{LpProblem, LpSolution, LpStatus, Row, RowId, RowSense, Sense, VarId};
pub use simplex::{Pricing, SimplexOptions};
