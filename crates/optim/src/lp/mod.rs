//! Linear programming: a bounded-variable two-phase revised simplex solver
//! over the shared sparse model IR.
//!
//! The solver handles general bounds `l <= x <= u` (including infinite and
//! fixed bounds), `<=`/`>=`/`==` rows, minimization and maximization, and
//! reports primal values, row duals, and reduced costs. The basis is kept as
//! an LU factorization plus product-form eta updates (see [`simplex`]).
//!
//! The problem type here is the workspace-wide [`crate::model::Model`];
//! [`LpProblem`] is an alias kept for the original LP-centric call sites.
//! Quadratic terms and integrality marks on a model are *ignored* by the
//! simplex solver — the QP/MILP front ends layer those on top.
//!
//! See [`LpProblem`] for the entry point.

pub mod basis;
pub(crate) mod pricing;
pub(crate) mod simplex;

pub use crate::model::{LpSolution, LpStatus, Row, RowId, RowSense, Sense, VarId};
pub use basis::{warm_env_enabled, Basis, BasisStatus};
pub use simplex::{phase1_basis, Pricing, SimplexOptions};

/// The LP problem type — an alias of the shared sparse [`crate::model::Model`].
pub type LpProblem = crate::model::Model;
