//! Bounded-variable two-phase revised simplex with an LU-factored basis.
//!
//! Implementation notes:
//!
//! - Every row `a'x (<=|>=|==) rhs` is rewritten `a'x + s = rhs` with slack
//!   bounds encoding the sense (`[0,inf)`, `(-inf,0]`, `[0,0]`).
//! - Phase 1 introduces one artificial column per row and minimizes their
//!   sum; phase 2 re-prices with the true objective after artificials are
//!   driven out (or pinned at zero on redundant rows).
//! - The basis is represented as an [`Lu`] factorization of the last
//!   refactorized basis matrix plus a list of product-form eta updates, one
//!   per pivot: ftran solves through the factors then applies the etas in
//!   order, btran applies the transposed etas in reverse then solves the
//!   transposed factors. The basis is refactorized from scratch every
//!   [`SimplexOptions::refactor_interval`] pivots (clearing the eta list and
//!   recomputing the basic solution) to bound drift — no dense explicit
//!   inverse is ever formed.
//! - Dantzig pricing by default, with an automatic switch to Bland's rule
//!   after a run of degenerate pivots to guarantee termination.

// The eta-application kernels below accumulate with classic indexed
// recurrences; iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

use crate::budget::{BudgetTripped, Partial, SolveBudget, SolveOutcome};
use crate::lp::basis::{Basis, BasisStatus};
use crate::lp::pricing::DevexWeights;
use crate::model::{LpSolution, LpStatus, Model, RowSense, Sense};
use crate::OptimError;
use ed_linalg::{Lu, Matrix};

/// Pricing rule for selecting the entering variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Most negative reduced cost (fast in practice).
    #[default]
    Dantzig,
    /// Devex reference weights (approximate steepest edge, shared with the
    /// dual simplex's row pricing via [`crate::lp::pricing`]).
    Devex,
    /// Smallest eligible index (anti-cycling; slower).
    Bland,
}

/// Options controlling the simplex method.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Maximum total pivots across both phases.
    pub max_iterations: usize,
    /// Pivots between basis refactorizations.
    pub refactor_interval: usize,
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// Primal feasibility tolerance (also phase-1 acceptance).
    pub feas_tol: f64,
    /// Pricing rule to start with (may switch to Bland on degeneracy).
    pub pricing: Pricing,
    /// Fault-injection hook: when `Some(seed)`, one entry of the solution
    /// vector is corrupted *after* the solve completes, leaving the
    /// reported objective and duals stale — simulating a basis-memory
    /// fault that escapes the solver's own checks. Exists so the
    /// certification tests can prove such faults are caught; never set in
    /// production paths.
    pub inject_basis_fault: Option<u64>,
    /// Warm-start basis to install before solving. A primal-feasible warm
    /// basis skips phase 1 entirely; a dual-feasible one (parent basis
    /// after a bound-only change) is repaired by the dual simplex; anything
    /// inconsistent — wrong dimensions, singular, neither primal nor dual
    /// feasible — falls back to a cold two-phase solve, so a stale or
    /// corrupt basis can cost time but never change the answer.
    pub warm: Option<Basis>,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        let tol = crate::certify::Tolerances::default();
        SimplexOptions {
            max_iterations: 50_000,
            refactor_interval: 128,
            opt_tol: tol.opt,
            feas_tol: tol.feas,
            pricing: Pricing::Dantzig,
            inject_basis_fault: None,
            warm: None,
        }
    }
}

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free nonbasic variable resting at zero.
    FreeZero,
}

/// Number of consecutive degenerate pivots before switching to Bland's rule.
const DEGENERATE_SWITCH: usize = 60;
/// Pivot magnitude floor for the ratio test and basis updates.
const PIVOT_TOL: f64 = 1e-10;

struct Tableau {
    m: usize,
    /// Total columns: structural + slacks + artificials.
    ncols: usize,
    n_structural: usize,
    cols: Vec<Vec<(usize, f64)>>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Phase-2 cost (minimization form).
    cost: Vec<f64>,
    b: Vec<f64>,
    x: Vec<f64>,
    state: Vec<VarState>,
    basis: Vec<usize>,
    /// LU factors of the basis matrix at the last refactorization
    /// (`None` until the first factorization, or when `m == 0`).
    lu: Option<Lu>,
    /// Product-form eta updates since the last refactorization: each pivot
    /// that replaced basis position `r` with a column whose ftran was `w`
    /// appends `(r, w)`.
    etas: Vec<(usize, Vec<f64>)>,
    iterations: usize,
}

impl Tableau {
    fn build(lp: &Model) -> Tableau {
        let m = lp.num_rows();
        let n = lp.num_vars();
        let ncols = n + 2 * m;
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        let mut lb = vec![0.0; ncols];
        let mut ub = vec![0.0; ncols];
        let mut cost = vec![0.0; ncols];

        let sign = match lp.sense {
            Sense::Min => 1.0,
            Sense::Max => -1.0,
        };
        for j in 0..n {
            lb[j] = lp.lb[j];
            ub[j] = lp.ub[j];
            cost[j] = sign * lp.obj[j];
            cols[j] = lp.col(j).to_vec();
        }
        let b = lp.rhs.clone();
        for (i, &sense) in lp.row_sense.iter().enumerate() {
            // Slack column.
            let s = n + i;
            cols[s].push((i, 1.0));
            match sense {
                RowSense::Le => {
                    lb[s] = 0.0;
                    ub[s] = f64::INFINITY;
                }
                RowSense::Ge => {
                    lb[s] = f64::NEG_INFINITY;
                    ub[s] = 0.0;
                }
                RowSense::Eq => {
                    lb[s] = 0.0;
                    ub[s] = 0.0;
                }
            }
            // Artificial column entries are filled in `install_artificials`.
        }
        // Coalesce duplicate row entries per column (Row::coef may repeat
        // vars; model columns keep entries in increasing row order, so a
        // stable sort preserves insertion order within a row).
        for col in cols.iter_mut().take(n) {
            col.sort_by_key(|&(i, _)| i);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(col.len());
            for &(i, c) in col.iter() {
                match merged.last_mut() {
                    Some((li, lc)) if *li == i => *lc += c,
                    _ => merged.push((i, c)),
                }
            }
            merged.retain(|&(_, c)| c != 0.0);
            *col = merged;
        }

        Tableau {
            m,
            ncols,
            n_structural: n,
            cols,
            lb,
            ub,
            cost,
            b,
            x: vec![0.0; ncols],
            state: vec![VarState::AtLower; ncols],
            basis: Vec::new(),
            lu: None,
            etas: Vec::new(),
            iterations: 0,
        }
    }

    fn initial_nonbasic(&self, j: usize) -> (VarState, f64) {
        let (l, u) = (self.lb[j], self.ub[j]);
        if l.is_finite() {
            (VarState::AtLower, l)
        } else if u.is_finite() {
            (VarState::AtUpper, u)
        } else {
            (VarState::FreeZero, 0.0)
        }
    }

    /// Sets all structural+slack columns nonbasic at their preferred bound
    /// and installs artificial columns as the starting basis.
    fn install_artificials(&mut self) -> Result<(), OptimError> {
        let n = self.n_structural;
        let m = self.m;
        for j in 0..(n + m) {
            let (st, v) = self.initial_nonbasic(j);
            self.state[j] = st;
            self.x[j] = v;
        }
        // Residual r = b - A x_N over structural + slack columns.
        let mut r = self.b.clone();
        for j in 0..(n + m) {
            let xj = self.x[j];
            if xj != 0.0 {
                for &(i, c) in &self.cols[j] {
                    r[i] -= c * xj;
                }
            }
        }
        self.basis = Vec::with_capacity(m);
        for i in 0..m {
            let a = n + m + i;
            let sign = if r[i] >= 0.0 { 1.0 } else { -1.0 };
            self.cols[a] = vec![(i, sign)];
            self.lb[a] = 0.0;
            self.ub[a] = f64::INFINITY;
            self.x[a] = r[i].abs();
            self.state[a] = VarState::Basic(i);
            self.basis.push(a);
        }
        // Factor the (diagonal ±1) starting basis.
        self.factor_basis()
    }

    fn is_artificial(&self, j: usize) -> bool {
        j >= self.n_structural + self.m
    }

    /// Factors the current basis matrix and clears the eta list.
    fn factor_basis(&mut self) -> Result<(), OptimError> {
        self.etas.clear();
        if self.m == 0 {
            self.lu = None;
            return Ok(());
        }
        let mut bmat = Matrix::zeros(self.m, self.m);
        for (k, &j) in self.basis.iter().enumerate() {
            for &(i, c) in &self.cols[j] {
                bmat[(i, k)] = c;
            }
        }
        let lu = Lu::factor(&bmat).map_err(|e| OptimError::Numerical {
            what: format!("basis refactorization failed: {e}"),
        })?;
        self.lu = Some(lu);
        Ok(())
    }

    /// `B^{-1} A_j`: solve through the LU factors, then apply the product-
    /// form etas in pivot order.
    fn ftran(&self, j: usize) -> Result<Vec<f64>, OptimError> {
        if self.m == 0 {
            return Ok(Vec::new());
        }
        let mut a = vec![0.0; self.m];
        for &(i, c) in &self.cols[j] {
            a[i] += c;
        }
        let lu = self.lu.as_ref().expect("basis factored before ftran");
        let mut z = lu.solve(&a).map_err(|e| OptimError::Numerical {
            what: format!("ftran failed: {e}"),
        })?;
        for (r, w) in &self.etas {
            let zr = z[*r] / w[*r];
            for k in 0..self.m {
                if k != *r {
                    z[k] -= w[k] * zr;
                }
            }
            z[*r] = zr;
        }
        Ok(z)
    }

    /// Simplex multipliers `y = B^{-T} c_B` for the given cost vector:
    /// apply the transposed etas in reverse pivot order, then solve the
    /// transposed LU factors.
    fn duals(&self, cost: &[f64]) -> Result<Vec<f64>, OptimError> {
        if self.m == 0 {
            return Ok(Vec::new());
        }
        let mut c: Vec<f64> = self.basis.iter().map(|&bk| cost[bk]).collect();
        for (r, w) in self.etas.iter().rev() {
            let mut s = 0.0;
            for k in 0..self.m {
                if k != *r {
                    s += w[k] * c[k];
                }
            }
            c[*r] = (c[*r] - s) / w[*r];
        }
        let lu = self.lu.as_ref().expect("basis factored before btran");
        lu.solve_transpose(&c).map_err(|e| OptimError::Numerical {
            what: format!("btran failed: {e}"),
        })
    }

    fn reduced_cost(&self, j: usize, cost: &[f64], y: &[f64]) -> f64 {
        let mut d = cost[j];
        for &(i, c) in &self.cols[j] {
            d -= y[i] * c;
        }
        d
    }

    /// Refactorizes the basis and recomputes the basic values from scratch.
    fn refactor(&mut self) -> Result<(), OptimError> {
        if self.m == 0 {
            return Ok(());
        }
        self.factor_basis()?;
        // Recompute x_B = B^{-1}(b - N x_N).
        let mut rhs = self.b.clone();
        for j in 0..self.ncols {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let xj = self.x[j];
            if xj != 0.0 {
                for &(i, c) in &self.cols[j] {
                    rhs[i] -= c * xj;
                }
            }
        }
        let lu = self.lu.as_ref().expect("factor_basis just succeeded");
        let xb = lu.solve(&rhs).map_err(|e| OptimError::Numerical {
            what: format!("basic-solution recompute failed: {e}"),
        })?;
        for (k, v) in xb.into_iter().enumerate() {
            self.x[self.basis[k]] = v;
        }
        Ok(())
    }

    /// Records the product-form update after column `q` replaces the basic
    /// variable at position `r`, given `w = B^{-1} A_q`.
    fn push_eta(&mut self, r: usize, w: &[f64]) {
        self.etas.push((r, w.to_vec()));
    }

    /// `B^{-T} e_r` — the `r`-th row of `B^{-1}`, used for pivot-row
    /// extraction in the dual ratio test and the devex frame updates.
    fn btran_unit(&self, r: usize) -> Result<Vec<f64>, OptimError> {
        if self.m == 0 {
            return Ok(Vec::new());
        }
        let mut c = vec![0.0; self.m];
        c[r] = 1.0;
        for (rr, w) in self.etas.iter().rev() {
            let mut s = 0.0;
            for k in 0..self.m {
                if k != *rr {
                    s += w[k] * c[k];
                }
            }
            c[*rr] = (c[*rr] - s) / w[*rr];
        }
        let lu = self.lu.as_ref().expect("basis factored before btran");
        lu.solve_transpose(&c).map_err(|e| OptimError::Numerical {
            what: format!("btran failed: {e}"),
        })
    }

    /// Reorders the basis columns ascending. Two solves that end at the
    /// same basis *set* then factor the identical matrix and report
    /// bit-identical solutions, regardless of the pivot path that reached
    /// the basis — the property the warm-vs-cold determinism tests pin.
    /// Invalidates the eta list; callers must `refactor` before the next
    /// ftran/btran.
    fn canonicalize_basis(&mut self) {
        self.basis.sort_unstable();
        for k in 0..self.basis.len() {
            let j = self.basis[k];
            self.state[j] = VarState::Basic(k);
        }
    }

    /// Snapshots the current basis as a typed, model-independent [`Basis`].
    fn snapshot_basis(&self) -> Basis {
        let nm = self.n_structural + self.m;
        let statuses = (0..nm)
            .map(|j| match self.state[j] {
                VarState::Basic(_) => BasisStatus::Basic,
                VarState::AtLower => BasisStatus::AtLower,
                VarState::AtUpper => BasisStatus::AtUpper,
                VarState::FreeZero => BasisStatus::FreeZero,
            })
            .collect();
        let mut art_rows = Vec::new();
        for i in 0..self.m {
            let a = nm + i;
            if matches!(self.state[a], VarState::Basic(_)) {
                let sign = match self.cols[a].first() {
                    Some(&(_, c)) if c < 0.0 => -1,
                    _ => 1,
                };
                art_rows.push((i as u32, sign));
            }
        }
        Basis { statuses, art_rows }
    }

    /// Installs a recorded basis into a freshly built tableau: statuses are
    /// replayed, basic artificials recreated for redundant rows, the basis
    /// factored in canonical (ascending) order, and the basic values
    /// recomputed from the *current* model data. Any inconsistency is an
    /// error and the caller falls back to a cold start.
    fn install_warm(&mut self, warm: &Basis) -> Result<(), OptimError> {
        let n = self.n_structural;
        let m = self.m;
        let reject = |what: &str| OptimError::Numerical {
            what: format!("warm basis rejected: {what}"),
        };
        if warm.statuses.len() != n + m || warm.num_basic() != m {
            return Err(reject("dimension mismatch"));
        }
        // All artificials pinned at [0,0]; redundant-row artificials are
        // recreated from the snapshot below.
        for i in 0..m {
            let a = n + m + i;
            self.cols[a].clear();
            self.lb[a] = 0.0;
            self.ub[a] = 0.0;
            self.x[a] = 0.0;
            self.state[a] = VarState::AtLower;
        }
        let mut basics: Vec<usize> = Vec::with_capacity(m);
        for (j, st) in warm.statuses.iter().enumerate() {
            match st {
                BasisStatus::Basic => basics.push(j),
                BasisStatus::AtLower => {
                    if !self.lb[j].is_finite() {
                        return Err(reject("AtLower status on an infinite bound"));
                    }
                    self.state[j] = VarState::AtLower;
                    self.x[j] = self.lb[j];
                }
                BasisStatus::AtUpper => {
                    if !self.ub[j].is_finite() {
                        return Err(reject("AtUpper status on an infinite bound"));
                    }
                    self.state[j] = VarState::AtUpper;
                    self.x[j] = self.ub[j];
                }
                BasisStatus::FreeZero => {
                    self.state[j] = VarState::FreeZero;
                    self.x[j] = 0.0;
                }
            }
        }
        for &(row, sign) in &warm.art_rows {
            let i = row as usize;
            if i >= m {
                return Err(reject("artificial row out of range"));
            }
            let a = n + m + i;
            if !self.cols[a].is_empty() {
                return Err(reject("duplicate artificial row"));
            }
            self.cols[a] = vec![(i, f64::from(sign))];
            basics.push(a);
        }
        self.basis = basics;
        self.canonicalize_basis();
        // Factor the installed basis and recompute x_B from current data;
        // a singular basis matrix rejects the warm start here.
        self.refactor()
    }

    /// Primal bound infeasibility of the current basic solution.
    fn primal_infeasibility(&self) -> f64 {
        let mut infeas = 0.0_f64;
        for &bi in &self.basis {
            infeas = infeas
                .max(self.lb[bi] - self.x[bi])
                .max(self.x[bi] - self.ub[bi]);
        }
        infeas
    }

    /// `true` when every nonbasic reduced cost has the sign optimality
    /// requires (the dual-feasibility precondition of the dual simplex).
    fn is_dual_feasible(&self, cost: &[f64], opt_tol: f64) -> Result<bool, OptimError> {
        let y = self.duals(cost)?;
        for j in 0..self.ncols {
            match self.state[j] {
                VarState::Basic(_) => continue,
                _ if self.ub[j] <= self.lb[j] => continue, // fixed
                _ => {}
            }
            let d = self.reduced_cost(j, cost, &y);
            let ok = match self.state[j] {
                VarState::AtLower => d >= -opt_tol,
                VarState::AtUpper => d <= opt_tol,
                VarState::FreeZero => d.abs() <= opt_tol,
                VarState::Basic(_) => true,
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Dual simplex loop: restores primal feasibility from a dual-feasible
    /// basis (the warm-start case after bound-only changes: branch-and-bound
    /// and MPEC children inherit their parent's optimal basis).
    ///
    /// Row selection uses the shared devex reference weights; the ratio
    /// test is the long-step variant with **bound flips**: boxed candidate
    /// columns whose full flip cannot absorb the remaining violation are
    /// flipped to their opposite bound instead of entering, which the dual
    /// step (≥ their ratio) makes dual-consistent.
    ///
    /// Returns `Ok(None)` at primal feasibility (hand off to phase 2) and
    /// `Ok(Some(tripped))` on a budget trip. `Err(Infeasible)` means no
    /// sign-compatible entering column exists for a violated row — proof of
    /// primal infeasibility, which the caller re-derives with a cold solve
    /// so warm trust semantics stay identical to cold.
    fn optimize_dual(
        &mut self,
        cost: &[f64],
        options: &SimplexOptions,
        budget: &SolveBudget,
    ) -> Result<Option<BudgetTripped>, OptimError> {
        let mut since_refactor = 0usize;
        let mut weights = DevexWeights::new(self.m);
        let mut stalled = 0usize;
        loop {
            if !budget.is_unlimited() {
                if let Some(tripped) = budget.iter_tripped(self.iterations) {
                    return Ok(Some(tripped));
                }
            }
            if self.iterations >= options.max_iterations {
                return Err(OptimError::IterationLimit {
                    limit: options.max_iterations,
                    incumbent: None,
                });
            }
            if since_refactor >= options.refactor_interval {
                self.refactor()?;
                since_refactor = 0;
            }

            // Leaving row: devex-weighted worst bound violation.
            let mut leave: Option<(usize, f64)> = None; // (position, score)
            let mut viol = 0.0_f64;
            for k in 0..self.m {
                let bi = self.basis[k];
                let v = if self.x[bi] < self.lb[bi] - options.feas_tol {
                    self.x[bi] - self.lb[bi]
                } else if self.x[bi] > self.ub[bi] + options.feas_tol {
                    self.x[bi] - self.ub[bi]
                } else {
                    continue;
                };
                let score = weights.score(k, v);
                if leave.is_none_or(|(_, best)| score > best) {
                    leave = Some((k, score));
                    viol = v;
                }
            }
            let Some((r, _)) = leave else {
                return Ok(None); // primal feasible
            };
            let bi = self.basis[r];
            let s = if viol > 0.0 { 1.0 } else { -1.0 };

            // Pivot row via one btran, then the dual ratio test.
            let rho = self.btran_unit(r)?;
            let y = self.duals(cost)?;
            let mut cands: Vec<(usize, f64, f64)> = Vec::new(); // (col, ratio, alpha)
            for j in 0..self.ncols {
                if matches!(self.state[j], VarState::Basic(_)) || self.ub[j] <= self.lb[j] {
                    continue;
                }
                let mut alpha = 0.0;
                for &(i, c) in &self.cols[j] {
                    alpha += rho[i] * c;
                }
                let eligible = match self.state[j] {
                    VarState::AtLower => s * alpha > PIVOT_TOL,
                    VarState::AtUpper => s * alpha < -PIVOT_TOL,
                    VarState::FreeZero => alpha.abs() > PIVOT_TOL,
                    VarState::Basic(_) => false,
                };
                if !eligible {
                    continue;
                }
                let d = self.reduced_cost(j, cost, &y);
                cands.push((j, d.abs() / alpha.abs(), alpha));
            }
            if cands.is_empty() {
                return Err(OptimError::Infeasible); // dual ray: no compatible column
            }
            // Long-step walk in ratio order: flip boxed columns the dual
            // step passes, stop at the first column that must enter.
            cands.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let mut remaining = viol.abs();
            let mut entering = None;
            let mut flips: Vec<(usize, f64)> = Vec::new(); // (col, signed width)
            for &(j, _, alpha) in &cands {
                let width = self.ub[j] - self.lb[j];
                if width.is_finite() && width * alpha.abs() < remaining - options.feas_tol {
                    let dir = match self.state[j] {
                        VarState::AtLower => 1.0,
                        VarState::AtUpper => -1.0,
                        _ => 0.0,
                    };
                    if dir != 0.0 {
                        flips.push((j, dir * width));
                        remaining -= width * alpha.abs();
                        continue;
                    }
                }
                entering = Some(j);
                break;
            }
            let Some(q) = entering else {
                // Every compatible column flips away yet violation remains:
                // the row is unsatisfiable — same infeasibility proof.
                return Err(OptimError::Infeasible);
            };

            let w = self.ftran(q)?;
            let pivot = w[r];
            if pivot.abs() <= PIVOT_TOL {
                // Pivot-row / ftran disagreement (stale etas): refactor and
                // retry once; a repeat is a genuine numerical failure.
                stalled += 1;
                if stalled > 2 {
                    return Err(OptimError::Numerical {
                        what: "dual simplex pivot vanished after refactorization".to_string(),
                    });
                }
                self.refactor()?;
                since_refactor = 0;
                continue;
            }
            stalled = 0;

            // Apply the bound flips (each one moves x_B by its column).
            for &(j, delta) in &flips {
                let wj = self.ftran(j)?;
                for k in 0..self.m {
                    let bk = self.basis[k];
                    self.x[bk] -= delta * wj[k];
                }
                self.state[j] = match self.state[j] {
                    VarState::AtLower => VarState::AtUpper,
                    VarState::AtUpper => VarState::AtLower,
                    other => other,
                };
                self.x[j] = match self.state[j] {
                    VarState::AtLower => self.lb[j],
                    VarState::AtUpper => self.ub[j],
                    _ => self.x[j],
                };
                self.iterations += 1;
            }

            // Pivot: drive the leaving variable exactly to its violated bound.
            let target = if viol > 0.0 { self.ub[bi] } else { self.lb[bi] };
            let t_step = (self.x[bi] - target) / pivot;
            self.x[q] += t_step;
            for k in 0..self.m {
                let bk = self.basis[k];
                self.x[bk] -= t_step * w[k];
            }
            self.state[bi] = if viol > 0.0 { VarState::AtUpper } else { VarState::AtLower };
            self.x[bi] = target;
            self.push_eta(r, &w);
            self.basis[r] = q;
            self.state[q] = VarState::Basic(r);
            since_refactor += 1;
            weights.pivot_update(
                r,
                pivot,
                w.iter().enumerate().filter(|&(_, &wk)| wk != 0.0).map(|(k, &wk)| (k, wk)),
            );
            self.iterations += 1;
        }
    }

    /// Runs the simplex loop on cost vector `cost` (minimization).
    ///
    /// `allow_unbounded == false` (phase 1) treats an unbounded ray as a
    /// numerical error since the phase-1 objective is bounded below by 0.
    ///
    /// Returns `Ok(None)` at optimality and `Ok(Some(tripped))` when the
    /// cooperative [`SolveBudget`] runs out mid-loop.
    fn optimize(
        &mut self,
        cost: &[f64],
        options: &SimplexOptions,
        allow_unbounded: bool,
        budget: &SolveBudget,
    ) -> Result<Option<BudgetTripped>, OptimError> {
        let mut pricing = options.pricing;
        let mut degenerate_run = 0usize;
        let mut since_refactor = 0usize;
        // Devex column weights (only consulted under `Pricing::Devex`).
        let mut weights = DevexWeights::new(self.ncols);

        loop {
            if !budget.is_unlimited() {
                if let Some(tripped) = budget.iter_tripped(self.iterations) {
                    return Ok(Some(tripped));
                }
            }
            if self.iterations >= options.max_iterations {
                // Phase-2 iterates are primal feasible, so the current point
                // is a usable incumbent; phase-1 iterates are not.
                let incumbent = allow_unbounded.then(|| self.x[..self.n_structural].to_vec());
                return Err(OptimError::IterationLimit {
                    limit: options.max_iterations,
                    incumbent,
                });
            }
            if since_refactor >= options.refactor_interval {
                self.refactor()?;
                since_refactor = 0;
            }

            let y = self.duals(cost)?;

            // Entering variable selection.
            let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, sigma)
            for j in 0..self.ncols {
                let (sigma, eligible) = match self.state[j] {
                    VarState::Basic(_) => continue,
                    VarState::AtLower => {
                        if self.ub[j] <= self.lb[j] {
                            continue; // fixed variable
                        }
                        (1.0, true)
                    }
                    VarState::AtUpper => {
                        if self.ub[j] <= self.lb[j] {
                            continue;
                        }
                        (-1.0, true)
                    }
                    VarState::FreeZero => (0.0, true),
                };
                if !eligible {
                    continue;
                }
                let d = self.reduced_cost(j, cost, &y);
                let (ok, sig, mag) = if self.state[j] == VarState::FreeZero {
                    if d < -options.opt_tol {
                        (true, 1.0, -d)
                    } else if d > options.opt_tol {
                        (true, -1.0, d)
                    } else {
                        (false, 0.0, 0.0)
                    }
                } else if sigma > 0.0 {
                    (d < -options.opt_tol, 1.0, -d)
                } else {
                    (d > options.opt_tol, -1.0, d)
                };
                if ok {
                    match pricing {
                        Pricing::Bland => {
                            entering = Some((j, mag, sig));
                            break;
                        }
                        Pricing::Dantzig => {
                            if entering.is_none_or(|(_, best, _)| mag > best) {
                                entering = Some((j, mag, sig));
                            }
                        }
                        Pricing::Devex => {
                            let score = weights.score(j, mag);
                            if entering.is_none_or(|(_, best, _)| score > best) {
                                entering = Some((j, score, sig));
                            }
                        }
                    }
                }
            }

            let Some((q, _, sigma)) = entering else {
                return Ok(None); // optimal
            };

            let w = self.ftran(q)?;

            // Ratio test.
            let flip_dist = if self.lb[q].is_finite() && self.ub[q].is_finite() {
                self.ub[q] - self.lb[q]
            } else {
                f64::INFINITY
            };
            let mut t_best = flip_dist;
            let mut leave: Option<(usize, VarState)> = None; // (basic position, bound hit)
            let mut best_pivot = 0.0_f64;
            for k in 0..self.m {
                let delta = sigma * w[k];
                let bi = self.basis[k];
                if delta > PIVOT_TOL {
                    // Basic value decreases toward its lower bound.
                    if self.lb[bi].is_finite() {
                        let t = (self.x[bi] - self.lb[bi]) / delta;
                        if t < t_best - 1e-12
                            || (t < t_best + 1e-12 && delta.abs() > best_pivot)
                        {
                            t_best = t.max(0.0);
                            leave = Some((k, VarState::AtLower));
                            best_pivot = delta.abs();
                        }
                    }
                } else if delta < -PIVOT_TOL {
                    // Basic value increases toward its upper bound.
                    if self.ub[bi].is_finite() {
                        let t = (self.x[bi] - self.ub[bi]) / delta;
                        if t < t_best - 1e-12
                            || (t < t_best + 1e-12 && delta.abs() > best_pivot)
                        {
                            t_best = t.max(0.0);
                            leave = Some((k, VarState::AtUpper));
                            best_pivot = delta.abs();
                        }
                    }
                }
            }

            if t_best.is_infinite() {
                return if allow_unbounded {
                    Err(OptimError::Unbounded)
                } else {
                    Err(OptimError::Numerical {
                        what: "phase-1 objective reported unbounded".to_string(),
                    })
                };
            }

            // Apply the step.
            self.x[q] += sigma * t_best;
            for k in 0..self.m {
                let bi = self.basis[k];
                self.x[bi] -= sigma * t_best * w[k];
            }

            match leave {
                None => {
                    // Bound flip: q moves across to its opposite bound.
                    self.state[q] = match self.state[q] {
                        VarState::AtLower => VarState::AtUpper,
                        VarState::AtUpper => VarState::AtLower,
                        other => other,
                    };
                    // Snap exactly to the bound.
                    self.x[q] = match self.state[q] {
                        VarState::AtLower => self.lb[q],
                        VarState::AtUpper => self.ub[q],
                        _ => self.x[q],
                    };
                }
                Some((r, hit)) => {
                    let leaving = self.basis[r];
                    if pricing == Pricing::Devex && w[r].abs() > PIVOT_TOL {
                        // Devex frame update over columns needs the pivot
                        // row: one extra btran, only under devex pricing.
                        let rho = self.btran_unit(r)?;
                        let touched: Vec<(usize, f64)> = (0..self.ncols)
                            .filter(|&j| !matches!(self.state[j], VarState::Basic(_)))
                            .map(|j| {
                                let mut a = 0.0;
                                for &(i, c) in &self.cols[j] {
                                    a += rho[i] * c;
                                }
                                (j, a)
                            })
                            .filter(|&(_, a)| a != 0.0)
                            .collect();
                        weights.pivot_update(q, w[r], touched.into_iter());
                        // The entering column's refreshed weight belongs to
                        // the leaving column, which takes its nonbasic slot.
                        weights.set_from(leaving, q);
                    }
                    self.state[leaving] = hit;
                    self.x[leaving] = match hit {
                        VarState::AtLower => self.lb[leaving],
                        VarState::AtUpper => self.ub[leaving],
                        _ => unreachable!("leaving variable must rest on a bound"),
                    };
                    self.push_eta(r, &w);
                    self.basis[r] = q;
                    self.state[q] = VarState::Basic(r);
                    since_refactor += 1;
                }
            }

            self.iterations += 1;
            if t_best < 1e-10 {
                degenerate_run += 1;
                if degenerate_run >= DEGENERATE_SWITCH {
                    pricing = Pricing::Bland;
                }
            } else {
                degenerate_run = 0;
                pricing = options.pricing;
            }
        }
    }

    /// After phase 1: pivot basic artificials out where possible, pin all
    /// artificials to `[0,0]`.
    fn drive_out_artificials(&mut self) -> Result<(), OptimError> {
        for r in 0..self.m {
            let bv = self.basis[r];
            if !self.is_artificial(bv) {
                continue;
            }
            // Find a non-artificial nonbasic column with a usable pivot in row r.
            let limit = self.n_structural + self.m;
            let mut replacement: Option<(usize, Vec<f64>)> = None;
            for j in 0..limit {
                if matches!(self.state[j], VarState::Basic(_)) {
                    continue;
                }
                let w = self.ftran(j)?;
                if w[r].abs() > 1e-8 {
                    replacement = Some((j, w));
                    break;
                }
            }
            if let Some((j, w)) = replacement {
                // Degenerate pivot: the artificial sits at zero, so the swap
                // does not move the solution.
                self.push_eta(r, &w);
                self.state[bv] = VarState::AtLower;
                self.x[bv] = 0.0;
                self.basis[r] = j;
                self.state[j] = VarState::Basic(r);
            }
        }
        for a in (self.n_structural + self.m)..self.ncols {
            self.lb[a] = 0.0;
            self.ub[a] = 0.0;
            if !matches!(self.state[a], VarState::Basic(_)) {
                self.x[a] = 0.0;
                self.state[a] = VarState::AtLower;
            }
        }
        Ok(())
    }
}

/// Solves a [`Model`]'s continuous relaxation (called via
/// [`Model::solve_with`]).
pub(crate) fn solve(lp: &Model, options: &SimplexOptions) -> Result<LpSolution, OptimError> {
    match solve_budgeted(lp, options, &SolveBudget::unlimited())? {
        SolveOutcome::Solved(s) => Ok(s),
        SolveOutcome::Partial(_) => unreachable!("an unlimited budget cannot trip"),
    }
}

/// Budgeted solve (called via [`Model::solve_budgeted`]). A budget trip
/// during phase 2 yields a *feasible* partial incumbent; a trip during
/// phase 1 yields `x: None` since no feasible point has been reached yet.
pub(crate) fn solve_budgeted(
    lp: &Model,
    options: &SimplexOptions,
    budget: &SolveBudget,
) -> Result<SolveOutcome<LpSolution>, OptimError> {
    let _t = ed_obs::timer("optim.simplex");
    let out = solve_budgeted_inner(lp, options, budget);
    if ed_obs::enabled() {
        let iterations = match &out {
            Ok(SolveOutcome::Solved(s)) => s.iterations,
            Ok(SolveOutcome::Partial(p)) => p.iterations,
            Err(_) => 0,
        };
        ed_obs::counter("optim.simplex.solves", 1);
        ed_obs::counter("optim.simplex.iterations", iterations as u64);
        if let Ok(SolveOutcome::Solved(s)) = &out {
            if s.warm_used {
                ed_obs::counter("optim.simplex.warm_starts", 1);
            } else if options.warm.is_some() {
                ed_obs::counter("optim.simplex.cold_restarts", 1);
            }
            if s.dual_iterations > 0 {
                ed_obs::counter("optim.simplex.dual_iterations", s.dual_iterations as u64);
            }
        }
    }
    out
}

/// Runs phase 1 only (the objective row is irrelevant to it) and returns
/// the canonical basis at its end plus the pivots spent — the shared warm
/// seed for sibling solves over the same constraint system that differ only
/// in their objective. A sibling installing this seed starts from exactly
/// the state a cold solve reaches after phase 1, so its warm answer is
/// bit-identical to its cold answer by construction.
///
/// Returns `Ok(None)` when the budget trips mid-phase-1.
///
/// # Errors
///
/// [`OptimError::Infeasible`] when the constraint system has no feasible
/// point; numerical errors propagate.
pub fn phase1_basis(
    lp: &Model,
    options: &SimplexOptions,
    budget: &SolveBudget,
) -> Result<Option<(Basis, usize)>, OptimError> {
    let mut t = Tableau::build(lp);
    t.install_artificials()?;
    let mut phase1_cost = vec![0.0; t.ncols];
    for a in (t.n_structural + t.m)..t.ncols {
        phase1_cost[a] = 1.0;
    }
    let artificial_sum: f64 = ((t.n_structural + t.m)..t.ncols).map(|a| t.x[a]).sum();
    if artificial_sum > 0.0 {
        if t.optimize(&phase1_cost, options, false, budget)?.is_some() {
            return Ok(None);
        }
        let infeas: f64 = ((t.n_structural + t.m)..t.ncols).map(|a| t.x[a].max(0.0)).sum();
        if infeas > options.feas_tol {
            return Err(OptimError::Infeasible);
        }
    }
    t.drive_out_artificials()?;
    Ok(Some((t.snapshot_basis(), t.iterations)))
}

/// How a warm-start attempt resolved.
enum WarmStart {
    /// Basis installed and primal feasible (possibly after dual pivots):
    /// ready for phase 2.
    Ready { dual_iterations: usize },
    /// Budget tripped during the dual repair.
    Tripped(BudgetTripped),
    /// Unusable (dimension/factorization mismatch, neither primal nor dual
    /// feasible, dual breakdown, or a dual infeasibility proof that the
    /// cold path must re-derive): restart cold.
    Reject,
}

/// Attempts to install and repair a warm basis on a fresh tableau.
fn try_warm_start(
    t: &mut Tableau,
    warm: &Basis,
    cost: &[f64],
    options: &SimplexOptions,
    budget: &SolveBudget,
) -> WarmStart {
    if t.install_warm(warm).is_err() {
        return WarmStart::Reject;
    }
    if t.primal_infeasibility() <= options.feas_tol {
        return WarmStart::Ready { dual_iterations: 0 };
    }
    // Primal infeasible: only a dual-feasible basis is repairable.
    match t.is_dual_feasible(cost, options.opt_tol) {
        Ok(true) => {}
        Ok(false) | Err(_) => return WarmStart::Reject,
    }
    let before = t.iterations;
    match t.optimize_dual(cost, options, budget) {
        Ok(None) => WarmStart::Ready { dual_iterations: t.iterations - before },
        Ok(Some(tripped)) => WarmStart::Tripped(tripped),
        // Includes `Err(Infeasible)`: the dual ray is a valid proof, but the
        // cold path re-derives it so a warm start can never flip an answer.
        Err(_) => WarmStart::Reject,
    }
}

fn solve_budgeted_inner(
    lp: &Model,
    options: &SimplexOptions,
    budget: &SolveBudget,
) -> Result<SolveOutcome<LpSolution>, OptimError> {
    let mut t = Tableau::build(lp);
    let cost = t.cost.clone();
    let mut warm_used = false;
    let mut dual_iterations = 0usize;

    if let Some(warm) = &options.warm {
        match try_warm_start(&mut t, warm, &cost, options, budget) {
            WarmStart::Ready { dual_iterations: d } => {
                warm_used = true;
                dual_iterations = d;
            }
            WarmStart::Tripped(tripped) => {
                // Mid-repair iterates are not primal feasible — same
                // semantics as a phase-1 trip.
                return Ok(SolveOutcome::Partial(Partial {
                    tripped,
                    x: None,
                    objective: None,
                    bound: None,
                    iterations: t.iterations,
                    nodes: 0,
                }));
            }
            WarmStart::Reject => {
                // Cold restart, keeping the pivots already spent in the
                // iteration accounting.
                let carried = t.iterations;
                t = Tableau::build(lp);
                t.iterations = carried;
            }
        }
    }

    if !warm_used {
        t.install_artificials()?;

        // Phase 1: minimize the sum of artificials.
        let mut phase1_cost = vec![0.0; t.ncols];
        for a in (t.n_structural + t.m)..t.ncols {
            phase1_cost[a] = 1.0;
        }
        // Skip phase 1 entirely when the artificial start is already feasible
        // (all residuals zero), which happens for problems with zero rows.
        let artificial_sum: f64 = ((t.n_structural + t.m)..t.ncols).map(|a| t.x[a]).sum();
        if artificial_sum > 0.0 {
            if let Some(tripped) = t.optimize(&phase1_cost, options, false, budget)? {
                return Ok(SolveOutcome::Partial(Partial {
                    tripped,
                    x: None,
                    objective: None,
                    bound: None,
                    iterations: t.iterations,
                    nodes: 0,
                }));
            }
            let infeas: f64 = ((t.n_structural + t.m)..t.ncols).map(|a| t.x[a].max(0.0)).sum();
            if infeas > options.feas_tol {
                return Err(OptimError::Infeasible);
            }
        }
        t.drive_out_artificials()?;
        // Canonical phase-2 start: the same state a warm sibling reaches by
        // installing this solve's phase-1 seed basis (see `phase1_basis`).
        t.canonicalize_basis();
        t.refactor()?;
    }

    // Phase 2.
    let tripped = t.optimize(&cost, options, true, budget)?;
    if let Some(tripped) = tripped {
        // Clean up the factorization if possible so the incumbent read below
        // is as accurate as the basis allows; a stale-but-feasible iterate is
        // still worth returning if refactorization fails here.
        let _ = t.refactor();
        let x: Vec<f64> = t.x[..t.n_structural].to_vec();
        let objective = lp.objective_value(&x);
        return Ok(SolveOutcome::Partial(Partial {
            tripped,
            x: Some(x),
            objective: Some(objective),
            bound: None,
            iterations: t.iterations,
            nodes: 0,
        }));
    }
    // Canonical final basis: any pivot path that ends at this basis set
    // reports bit-identical numbers (warm-vs-cold determinism).
    t.canonicalize_basis();
    t.refactor()?;

    // Assemble the solution.
    let n = t.n_structural;
    let mut x: Vec<f64> = t.x[..n].to_vec();
    let y_min = t.duals(&cost)?;
    let sign = match lp.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    let duals: Vec<f64> = y_min.iter().map(|v| sign * v).collect();
    let reduced: Vec<f64> = (0..n)
        .map(|j| sign * t.reduced_cost(j, &cost, &y_min))
        .collect();
    let objective = lp.objective_value(&x);
    if let Some(seed) = options.inject_basis_fault {
        if n > 0 {
            // Corrupt one primal entry after the objective and duals were
            // read — the stale bookkeeping is exactly what an undetected
            // basis-memory fault looks like from the outside.
            let j = (seed as usize) % n;
            x[j] += 1.0 + 0.25 * x[j].abs();
        }
    }
    Ok(SolveOutcome::Solved(LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        duals,
        reduced_costs: reduced,
        iterations: t.iterations,
        basis: Some(t.snapshot_basis()),
        warm_used,
        dual_iterations,
    }))
}

#[cfg(test)]
mod tests {
    use crate::lp::{LpProblem, Pricing, Row, SimplexOptions};
    use crate::OptimError;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn simple_max() {
        // max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4,y=0, obj 12
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, f64::INFINITY, 3.0);
        let y = lp.add_var(0.0, f64::INFINITY, 2.0);
        lp.add_row(Row::le(4.0).coef(x, 1.0).coef(y, 1.0));
        lp.add_row(Row::le(6.0).coef(x, 1.0).coef(y, 3.0));
        let s = lp.solve().unwrap();
        assert!(close(s.objective, 12.0), "obj={}", s.objective);
        assert!(close(s.x[0], 4.0) && close(s.x[1], 0.0));
    }

    #[test]
    fn equality_and_bounds() {
        // min 2p1 + p2 st p1 + p2 = 300, 0<=p1<=300, 0<=p2<=200
        let mut lp = LpProblem::minimize();
        let p1 = lp.add_var(0.0, 300.0, 2.0);
        let p2 = lp.add_var(0.0, 200.0, 1.0);
        lp.add_row(Row::eq(300.0).coef(p1, 1.0).coef(p2, 1.0));
        let s = lp.solve().unwrap();
        assert!(close(s.x[0], 100.0) && close(s.x[1], 200.0));
        assert!(close(s.objective, 400.0));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_row(Row::ge(2.0).coef(x, 1.0));
        assert!(matches!(lp.solve(), Err(OptimError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, f64::INFINITY, 1.0);
        let y = lp.add_var(0.0, f64::INFINITY, 0.0);
        lp.add_row(Row::ge(0.0).coef(x, 1.0).coef(y, -1.0));
        assert!(matches!(lp.solve(), Err(OptimError::Unbounded)));
    }

    #[test]
    fn free_variables() {
        // min |style| problem with free variable: min x st x >= -5 handled via row
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        lp.add_row(Row::ge(-5.0).coef(x, 1.0));
        let s = lp.solve().unwrap();
        assert!(close(s.x[0], -5.0));
    }

    #[test]
    fn negative_rhs() {
        // min x st -x <= -3  (i.e. x >= 3)
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(Row::le(-3.0).coef(x, -1.0));
        let s = lp.solve().unwrap();
        assert!(close(s.x[0], 3.0));
    }

    #[test]
    fn bound_flip_path() {
        // max x + y with x,y in [0, 1] and x + y <= 10: both flip to upper bound.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, 1.0, 1.0);
        let y = lp.add_var(0.0, 1.0, 1.0);
        lp.add_row(Row::le(10.0).coef(x, 1.0).coef(y, 1.0));
        let s = lp.solve().unwrap();
        assert!(close(s.objective, 2.0));
    }

    #[test]
    fn fixed_variables_respected() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(2.0, 2.0, 1.0);
        let y = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(Row::ge(5.0).coef(x, 1.0).coef(y, 1.0));
        let s = lp.solve().unwrap();
        assert!(close(s.x[0], 2.0));
        assert!(close(s.x[1], 3.0));
    }

    #[test]
    fn duals_equality_shadow_price() {
        // min 2p1 + p2 st p1 + p2 = 300, p2 <= 200: marginal unit comes from
        // p1 at cost 2 -> dual of balance = 2.
        let mut lp = LpProblem::minimize();
        let p1 = lp.add_var(0.0, 300.0, 2.0);
        let p2 = lp.add_var(0.0, 200.0, 1.0);
        lp.add_row(Row::eq(300.0).coef(p1, 1.0).coef(p2, 1.0));
        let s = lp.solve().unwrap();
        assert!(close(s.duals[0], 2.0), "dual={}", s.duals[0]);
    }

    #[test]
    fn zero_rows_puts_vars_at_best_bound() {
        let mut lp = LpProblem::minimize();
        let _x = lp.add_var(-1.0, 5.0, 1.0);
        let _y = lp.add_var(-2.0, 3.0, -1.0);
        let s = lp.solve().unwrap();
        assert!(close(s.x[0], -1.0) && close(s.x[1], 3.0));
    }

    #[test]
    fn bland_pricing_agrees_with_dantzig() {
        // Beale's classic cycling example (min form); optimum -0.05 at
        // x = (1/25, 0, 1, 0).
        let build = || {
            let mut lp = LpProblem::minimize();
            let x1 = lp.add_var(0.0, f64::INFINITY, -0.75);
            let x2 = lp.add_var(0.0, f64::INFINITY, 150.0);
            let x3 = lp.add_var(0.0, f64::INFINITY, -0.02);
            let x4 = lp.add_var(0.0, f64::INFINITY, 6.0);
            lp.add_row(Row::le(0.0).coef(x1, 0.25).coef(x2, -60.0).coef(x3, -0.04).coef(x4, 9.0));
            lp.add_row(Row::le(0.0).coef(x1, 0.5).coef(x2, -90.0).coef(x3, -0.02).coef(x4, 3.0));
            lp.add_row(Row::le(1.0).coef(x3, 1.0));
            lp
        };
        let a = build().solve().unwrap().objective;
        let opts = SimplexOptions { pricing: Pricing::Bland, ..Default::default() };
        let b = build().solve_with(&opts).unwrap().objective;
        assert!(close(a, b), "{a} vs {b}");
        assert!(close(a, -0.05), "expected Beale optimum -0.05, got {a}");
    }

    #[test]
    fn redundant_rows_ok() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 10.0, 1.0);
        let y = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(Row::eq(4.0).coef(x, 1.0).coef(y, 1.0));
        lp.add_row(Row::eq(8.0).coef(x, 2.0).coef(y, 2.0)); // redundant duplicate
        let s = lp.solve().unwrap();
        assert!(close(s.x[0] + s.x[1], 4.0));
    }

    #[test]
    fn larger_transportation_problem() {
        // 3 plants x 4 markets transportation LP with known optimum.
        let supply = [35.0, 50.0, 40.0];
        let demand = [45.0, 20.0, 30.0, 30.0];
        let cost = [
            [8.0, 6.0, 10.0, 9.0],
            [9.0, 12.0, 13.0, 7.0],
            [14.0, 9.0, 16.0, 5.0],
        ];
        let mut lp = LpProblem::minimize();
        let mut v = vec![];
        for i in 0..3 {
            for j in 0..4 {
                v.push(lp.add_var(0.0, f64::INFINITY, cost[i][j]));
            }
        }
        for i in 0..3 {
            let mut row = Row::le(supply[i]);
            for j in 0..4 {
                row = row.coef(v[i * 4 + j], 1.0);
            }
            lp.add_row(row);
        }
        for j in 0..4 {
            let mut row = Row::ge(demand[j]);
            for i in 0..3 {
                row = row.coef(v[i * 4 + j], 1.0);
            }
            lp.add_row(row);
        }
        let s = lp.solve().unwrap();
        assert!(close(s.objective, 1020.0), "obj={}", s.objective);
    }

    #[test]
    fn many_pivots_cross_refactor_interval() {
        // Force several refactorizations (tiny interval) on a problem large
        // enough to take multiple pivots; the LU+eta basis must agree with
        // the known optimum.
        let opts = SimplexOptions { refactor_interval: 2, ..Default::default() };
        let mut lp = LpProblem::minimize();
        let n = 12;
        let v: Vec<_> = (0..n).map(|j| lp.add_var(0.0, 10.0, 1.0 + (j as f64) * 0.1)).collect();
        let mut row = Row::ge(60.0);
        for &x in &v {
            row = row.coef(x, 1.0);
        }
        lp.add_row(row);
        for pair in v.chunks(2) {
            lp.add_row(Row::le(15.0).coef(pair[0], 1.0).coef(pair[1], 1.0));
        }
        let s = lp.solve_with(&opts).unwrap();
        let base = lp.solve().unwrap();
        assert!(close(s.objective, base.objective), "{} vs {}", s.objective, base.objective);
    }
}
