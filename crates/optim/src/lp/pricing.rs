//! Reference-weight (devex) pricing shared by the primal and dual simplex.
//!
//! Devex (Harris 1973) approximates steepest-edge pricing without the
//! per-iteration norm recomputation: each candidate keeps a reference
//! weight `w_i >= 1` approximating the squared norm of its edge direction,
//! and selection maximizes `g_i^2 / w_i` for gradient `g_i` (a reduced cost
//! in the primal, a primal infeasibility in the dual). After a pivot the
//! weights of the touched candidates are raised by the standard devex
//! recurrence `w_i = max(w_i, (alpha_i / alpha_p)^2 * w_p)` — the same
//! update serves the primal (over columns, using the pivot row) and the
//! dual (over basis rows, using the entering column), which is what lets
//! one module price both methods.

/// Devex reference weights over one candidate index space (columns for the
/// primal, basis positions for the dual).
#[derive(Debug, Clone)]
pub(crate) struct DevexWeights {
    w: Vec<f64>,
}

impl DevexWeights {
    /// Fresh reference framework: every weight 1 (Dantzig-equivalent until
    /// pivots differentiate the weights).
    pub(crate) fn new(len: usize) -> DevexWeights {
        DevexWeights { w: vec![1.0; len] }
    }

    /// Selection score for candidate `i` with gradient `g`.
    pub(crate) fn score(&self, i: usize, g: f64) -> f64 {
        g * g / self.w[i]
    }

    /// Devex update after a pivot at index `p` with pivot element `alpha_p`:
    /// every touched candidate `(i, alpha_i)` has its weight raised to at
    /// least `(alpha_i / alpha_p)^2 * w_p`, and the pivot index itself is
    /// re-weighted to `max(1, w_p / alpha_p^2)` (the leaving candidate's
    /// edge in the new frame).
    pub(crate) fn pivot_update<I>(&mut self, p: usize, alpha_p: f64, touched: I)
    where
        I: Iterator<Item = (usize, f64)>,
    {
        if alpha_p.abs() < 1e-300 {
            return; // degenerate pivot element: leave the frame unchanged
        }
        let wp = self.w[p];
        let inv2 = 1.0 / (alpha_p * alpha_p);
        for (i, alpha_i) in touched {
            if i == p {
                continue;
            }
            let cand = alpha_i * alpha_i * inv2 * wp;
            if cand > self.w[i] {
                self.w[i] = cand;
            }
        }
        self.w[p] = (wp * inv2).max(1.0);
    }

    /// Copies the weight of `src` onto `dst` (primal pricing hands the
    /// entering column's refreshed weight to the leaving column, which
    /// inherits its nonbasic slot in the frame).
    pub(crate) fn set_from(&mut self, dst: usize, src: usize) {
        self.w[dst] = self.w[src];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_start_uniform_and_update_monotonically() {
        let mut d = DevexWeights::new(3);
        assert_eq!(d.score(0, 2.0), 4.0);
        // Pivot at index 1 with alpha_p = 0.5: index 0 touched with alpha 2.
        d.pivot_update(1, 0.5, [(0, 2.0)].into_iter());
        // w_0 = max(1, (2/0.5)^2 * 1) = 16; w_1 = max(1, 1/0.25) = 4.
        assert_eq!(d.score(0, 2.0), 4.0 / 16.0);
        assert_eq!(d.score(1, 2.0), 1.0);
        // Weights never drop below 1, so scores never exceed g^2.
        d.pivot_update(2, 100.0, std::iter::empty());
        assert!(d.score(2, 1.0) <= 1.0);
    }
}
