//! LP model builder and solution types.

use crate::budget::{SolveBudget, SolveOutcome};
use crate::lp::simplex::{self, SimplexOptions};
use crate::OptimError;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Min,
    /// Maximize the objective.
    Max,
}

/// Relational sense of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSense {
    /// `a'x <= rhs`
    Le,
    /// `a'x >= rhs`
    Ge,
    /// `a'x == rhs`
    Eq,
}

/// Opaque handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based column index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub(crate) usize);

impl RowId {
    /// Zero-based row index of the constraint.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A constraint row under construction, used with [`LpProblem::add_row`].
///
/// # Example
///
/// ```
/// use ed_optim::lp::{LpProblem, Row};
///
/// let mut lp = LpProblem::minimize();
/// let x = lp.add_var(0.0, 1.0, 1.0);
/// let y = lp.add_var(0.0, 1.0, 1.0);
/// lp.add_row(Row::ge(1.0).coef(x, 1.0).coef(y, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Row {
    pub(crate) sense: RowSense,
    pub(crate) rhs: f64,
    pub(crate) coeffs: Vec<(VarId, f64)>,
}

impl Row {
    /// Starts a `<= rhs` row.
    pub fn le(rhs: f64) -> Row {
        Row { sense: RowSense::Le, rhs, coeffs: Vec::new() }
    }

    /// Starts a `>= rhs` row.
    pub fn ge(rhs: f64) -> Row {
        Row { sense: RowSense::Ge, rhs, coeffs: Vec::new() }
    }

    /// Starts an `== rhs` row.
    pub fn eq(rhs: f64) -> Row {
        Row { sense: RowSense::Eq, rhs, coeffs: Vec::new() }
    }

    /// Adds (accumulates) a coefficient for `var`.
    pub fn coef(mut self, var: VarId, value: f64) -> Row {
        if value != 0.0 {
            self.coeffs.push((var, value));
        }
        self
    }

    /// Adds many coefficients at once.
    pub fn coefs<I: IntoIterator<Item = (VarId, f64)>>(mut self, iter: I) -> Row {
        for (v, c) in iter {
            if c != 0.0 {
                self.coeffs.push((v, c));
            }
        }
        self
    }
}

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
}

/// Solution of an LP.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status (currently always [`LpStatus::Optimal`]; infeasible
    /// and unbounded outcomes are reported through [`OptimError`]).
    pub status: LpStatus,
    /// Optimal objective value in the problem's own sense.
    pub objective: f64,
    /// Primal values for the structural variables, indexed by [`VarId`].
    pub x: Vec<f64>,
    /// Row duals `y` indexed by [`RowId`].
    ///
    /// Convention: internally every row is written `a'x + s = rhs`, and
    /// `duals[i]` is the simplex multiplier of that equality **for the
    /// minimization form** of the problem. For a maximization problem the
    /// sign is flipped so that duals refer to the stated objective. For an
    /// `Eq` row this is the ordinary Lagrange multiplier.
    pub duals: Vec<f64>,
    /// Reduced costs of the structural variables (minimization form,
    /// sign-flipped for maximization problems like `duals`).
    pub reduced_costs: Vec<f64>,
    /// Total simplex iterations across both phases.
    pub iterations: usize,
}

/// A linear program with bounded variables.
///
/// Build with [`LpProblem::minimize`]/[`LpProblem::maximize`], add variables
/// and rows, then call [`LpProblem::solve`].
///
/// # Example
///
/// ```
/// use ed_optim::lp::{LpProblem, Row};
///
/// # fn main() -> Result<(), ed_optim::OptimError> {
/// // Economic-dispatch-flavored toy: two generators serve 300 MW,
/// // generator 1 twice as expensive as generator 2.
/// let mut lp = LpProblem::minimize();
/// let p1 = lp.add_var(0.0, 300.0, 2.0);
/// let p2 = lp.add_var(0.0, 200.0, 1.0);
/// lp.add_row(Row::eq(300.0).coef(p1, 1.0).coef(p2, 1.0));
/// let sol = lp.solve()?;
/// assert_eq!(sol.x, vec![100.0, 200.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    pub(crate) sense: Sense,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) obj: Vec<f64>,
    pub(crate) rows: Vec<Row>,
}

impl LpProblem {
    /// Creates an empty minimization problem.
    pub fn minimize() -> LpProblem {
        LpProblem { sense: Sense::Min, lb: Vec::new(), ub: Vec::new(), obj: Vec::new(), rows: Vec::new() }
    }

    /// Creates an empty maximization problem.
    pub fn maximize() -> LpProblem {
        LpProblem { sense: Sense::Max, lb: Vec::new(), ub: Vec::new(), obj: Vec::new(), rows: Vec::new() }
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable with bounds `[lb, ub]` and objective coefficient `obj`.
    ///
    /// Use `f64::NEG_INFINITY` / `f64::INFINITY` for free bounds.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.lb.push(lb);
        self.ub.push(ub);
        self.obj.push(obj);
        VarId(self.lb.len() - 1)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.lb.len()
    }

    /// Handles of all variables, in creation order.
    pub fn var_ids(&self) -> Vec<VarId> {
        (0..self.num_vars()).map(VarId).collect()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if the row references a variable that was not created by this
    /// problem (index out of range).
    pub fn add_row(&mut self, row: Row) -> RowId {
        for &(v, _) in &row.coeffs {
            assert!(v.0 < self.num_vars(), "row references unknown variable {v:?}");
        }
        self.rows.push(row);
        RowId(self.rows.len() - 1)
    }

    /// Overwrites the bounds of `var`.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        self.lb[var.0] = lb;
        self.ub[var.0] = ub;
    }

    /// Current bounds of `var`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.lb[var.0], self.ub[var.0])
    }

    /// Overwrites the objective coefficient of `var`.
    pub fn set_objective_coef(&mut self, var: VarId, obj: f64) {
        self.obj[var.0] = obj;
    }

    /// Clears the objective (all coefficients to zero).
    pub fn clear_objective(&mut self) {
        self.obj.iter_mut().for_each(|c| *c = 0.0);
    }

    /// Changes the optimization sense.
    pub fn set_sense(&mut self, sense: Sense) {
        self.sense = sense;
    }

    /// Validates model consistency (bounds ordered, finite rhs).
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidModel`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), OptimError> {
        for (i, (&l, &u)) in self.lb.iter().zip(&self.ub).enumerate() {
            if l > u {
                return Err(OptimError::InvalidModel {
                    what: format!("variable {i} has lb {l} > ub {u}"),
                });
            }
            if l.is_nan() || u.is_nan() {
                return Err(OptimError::InvalidModel { what: format!("variable {i} has NaN bound") });
            }
        }
        for (i, row) in self.rows.iter().enumerate() {
            if !row.rhs.is_finite() {
                return Err(OptimError::InvalidModel { what: format!("row {i} has non-finite rhs") });
            }
            for &(_, c) in &row.coeffs {
                if !c.is_finite() {
                    return Err(OptimError::InvalidModel {
                        what: format!("row {i} has non-finite coefficient"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Solves with default options.
    ///
    /// # Errors
    ///
    /// - [`OptimError::Infeasible`] if no feasible point exists.
    /// - [`OptimError::Unbounded`] if the objective is unbounded.
    /// - [`OptimError::IterationLimit`] / [`OptimError::Numerical`] on solver
    ///   trouble.
    pub fn solve(&self) -> Result<LpSolution, OptimError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves with explicit simplex options.
    ///
    /// # Errors
    ///
    /// Same as [`LpProblem::solve`].
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<LpSolution, OptimError> {
        self.validate()?;
        simplex::solve(self, options)
    }

    /// Solves under a cooperative [`SolveBudget`]. Exhausting the budget is
    /// not an error: the solver returns [`SolveOutcome::Partial`] carrying
    /// the best feasible iterate reached (phase 2) or `x: None` if the trip
    /// happened before feasibility (phase 1), plus which budget tripped.
    ///
    /// # Errors
    ///
    /// Same as [`LpProblem::solve`], except the iteration budget in
    /// `budget` trips to a partial outcome instead of
    /// [`OptimError::IterationLimit`].
    pub fn solve_budgeted(
        &self,
        options: &SimplexOptions,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<LpSolution>, OptimError> {
        self.validate()?;
        simplex::solve_budgeted(self, options, budget)
    }

    /// Evaluates the objective at a point (in the problem's own sense).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars());
        self.obj.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Row activity `a_i'x` for each row at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn row_activities(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.num_vars());
        self.rows
            .iter()
            .map(|r| r.coeffs.iter().map(|&(v, c)| c * x[v.0]).sum())
            .collect()
    }

    /// Maximum constraint/bound violation of a point (0 means feasible).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn infeasibility(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0_f64;
        for (i, &xi) in x.iter().enumerate() {
            worst = worst.max(self.lb[i] - xi).max(xi - self.ub[i]);
        }
        for (row, act) in self.rows.iter().zip(self.row_activities(x)) {
            let v = match row.sense {
                RowSense::Le => act - row.rhs,
                RowSense::Ge => row.rhs - act,
                RowSense::Eq => (act - row.rhs).abs(),
            };
            worst = worst.max(v);
        }
        worst.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 1.0, 2.0);
        let y = lp.add_var(-1.0, 1.0, -1.0);
        let r = lp.add_row(Row::le(3.0).coef(x, 1.0).coef(y, 2.0));
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_rows(), 1);
        assert_eq!(r.index(), 0);
        assert_eq!(lp.bounds(y), (-1.0, 1.0));
    }

    #[test]
    fn validate_catches_bad_bounds() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(1.0, 0.0, 0.0);
        let _ = x;
        assert!(matches!(lp.validate(), Err(OptimError::InvalidModel { .. })));
    }

    #[test]
    fn infeasibility_measures_violation() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(Row::ge(5.0).coef(x, 1.0));
        assert_eq!(lp.infeasibility(&[7.0]), 0.0);
        assert_eq!(lp.infeasibility(&[3.0]), 2.0);
        assert_eq!(lp.infeasibility(&[-1.0]), 6.0);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 1.0, 1.0);
        let row = Row::eq(0.0).coef(x, 0.0);
        assert!(row.coeffs.is_empty());
        lp.add_row(row);
    }
}
