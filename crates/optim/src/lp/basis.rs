//! Typed simplex basis: the reusable hand-off unit for warm starts.
//!
//! A [`Basis`] records where every structural and slack column of a model
//! rested when a simplex solve finished (or when phase 1 ended): basic, at
//! its lower bound, at its upper bound, or free-at-zero. It is a *snapshot*
//! — no factorization is stored; installing a basis into a fresh tableau
//! re-factors the basis matrix from the current model data, so a basis
//! recorded against one model can be replayed against a sibling model that
//! changed only its objective (primal-feasible start) or only its bounds
//! (dual-feasible start, resolved by the dual simplex).
//!
//! Installation is **fail-safe**: any mismatch — wrong dimensions, wrong
//! basic count, a bound status pointing at an infinite bound, a singular
//! basis matrix — rejects the warm start and the caller falls back to a
//! cold two-phase solve. Trust semantics never depend on a warm start
//! being valid.

/// Where one column rests in a recorded basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisStatus {
    /// In the basis (value solved from the constraints).
    Basic,
    /// Nonbasic at its (finite) lower bound.
    AtLower,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
    /// Free nonbasic column resting at zero.
    FreeZero,
}

/// A recorded simplex basis over a model's structural + slack columns.
///
/// `statuses[j]` covers the structural variables first (`0..n`), then one
/// slack per row (`n..n+m`). Rows whose zero-valued artificial column could
/// not be pivoted out (redundant rows) are listed in `art_rows` so a warm
/// install can recreate exactly the same basis matrix.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Basis {
    /// Status per structural + slack column.
    pub statuses: Vec<BasisStatus>,
    /// `(row, sign)` for rows whose artificial column stayed basic at zero
    /// after phase 1 (redundant rows); `sign` is the artificial column's
    /// ±1 entry.
    pub art_rows: Vec<(u32, i8)>,
}

impl Basis {
    /// Number of basic columns recorded (including basic artificials) —
    /// must equal the row count `m` to be installable.
    pub fn num_basic(&self) -> usize {
        self.statuses.iter().filter(|s| matches!(s, BasisStatus::Basic)).count()
            + self.art_rows.len()
    }

    /// `true` when this basis was recorded against a model with
    /// `n` structural variables and `m` rows.
    pub fn dims_match(&self, n: usize, m: usize) -> bool {
        self.statuses.len() == n + m && self.num_basic() == m
    }
}

/// Whether warm-started solves are enabled by the environment
/// (`ED_WARM=0` disables them; anything else, including unset, enables).
pub fn warm_env_enabled() -> bool {
    std::env::var("ED_WARM").map(|v| v != "0").unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_basic_count() {
        let b = Basis {
            statuses: vec![
                BasisStatus::Basic,
                BasisStatus::AtLower,
                BasisStatus::AtUpper,
                BasisStatus::FreeZero,
                BasisStatus::Basic,
            ],
            art_rows: vec![(2, 1)],
        };
        assert_eq!(b.num_basic(), 3);
        assert!(b.dims_match(2, 3));
        assert!(!b.dims_match(2, 2), "basic count must equal m");
        assert!(!b.dims_match(3, 3), "length must equal n + m");
    }
}
