//! The [`Solver`] trait: one solve interface over the shared [`Model`] IR.
//!
//! Every solver family in this crate (simplex LP, active-set QP,
//! interior-point QP, big-M branch-and-bound MILP, complementarity-branching
//! MPEC) can be driven through this trait, which is what the dispatch
//! fallback ladder in `ed-core` uses to treat rungs uniformly.
//!
//! Conventions:
//!
//! - `row_duals[i]` is `∂objective/∂rhs_i` **in the model's stated sense**
//!   (the same convention the LP simplex reports): for a minimization, a
//!   binding `>=` row has a nonnegative dual.
//! - Integer/complementarity solvers report empty dual vectors — the
//!   restricted subproblem duals are not meaningful for the original
//!   problem and callers that need them (LMP extraction) resolve a fixed
//!   continuous model instead.

use crate::budget::{Partial, SolveBudget, SolveOutcome};
use crate::certify::Tolerances;
use crate::lp::{Basis, BasisStatus, SimplexOptions};
use crate::milp::{MilpOptions, MilpProblem};
use crate::model::Model;
use crate::mpec::{MpecOptions, MpecProblem};
use crate::qp::problem::{DenseQp, IneqSrc, QpSolution};
use crate::qp::{active_set, ipm, IpmOptions, QpOptions};
use crate::OptimError;

/// A solution in the unified format shared by all solver families.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Primal values, one per model variable.
    pub x: Vec<f64>,
    /// Objective value in the model's stated sense.
    pub objective: f64,
    /// Row duals (`∂obj/∂rhs`, stated sense); empty when the solving family
    /// does not produce meaningful duals (MILP/MPEC).
    pub row_duals: Vec<f64>,
    /// Reduced costs per variable; empty when not produced.
    pub reduced_costs: Vec<f64>,
    /// Whether optimality was proven (as opposed to a feasible incumbent
    /// accepted at a limit).
    pub proved_optimal: bool,
    /// Iterations spent (simplex pivots, active-set steps, IPM steps, or
    /// summed over branch-and-bound node relaxations).
    pub iterations: usize,
    /// Branch-and-bound nodes explored (0 for continuous solvers).
    pub nodes: usize,
    /// Optimal simplex basis when the solving family produces one (pure
    /// simplex, or the incumbent relaxation of a branch-and-bound tree);
    /// `None` for interior methods and postsolved solutions. Callers hand
    /// this to [`Solver::solve_warm`] of a sibling solve.
    pub basis: Option<Basis>,
}

/// A solver family that consumes the shared [`Model`] IR.
pub trait Solver {
    /// Short human-readable name (used in fallback-ladder reports).
    fn name(&self) -> &'static str;

    /// Solves `model` under a cooperative budget.
    ///
    /// # Errors
    ///
    /// [`OptimError`] on infeasibility, unboundedness, numerical failure,
    /// or a model the family cannot represent (e.g. quadratic terms handed
    /// to a pure-LP solver).
    fn solve(
        &self,
        model: &Model,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<Solution>, OptimError>;

    /// Solves `model` with a basis from a previous (sibling or parent)
    /// solve offered as a warm start. The default ignores the basis —
    /// families that can exploit one override this. Implementations must
    /// treat the basis as a *hint only*: a stale or corrupt basis may cost
    /// iterations but never changes the returned answer (fail-safe install
    /// falls back to the cold path).
    ///
    /// # Errors
    ///
    /// Same as [`Solver::solve`].
    fn solve_warm(
        &self,
        model: &Model,
        budget: &SolveBudget,
        warm: Option<&Basis>,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        let _ = warm;
        self.solve(model, budget)
    }

    /// A copy of this solver with its numerical tolerances retargeted to
    /// `tol` (mapping each family's option fields from the unified
    /// [`Tolerances`] vocabulary). Used by the certification repair ladder
    /// to re-solve with tightened tolerances.
    fn with_tolerances(&self, tol: &Tolerances) -> Box<dyn Solver>;
}

/// Maps the unified tolerance vocabulary onto simplex options.
fn simplex_with(mut options: SimplexOptions, tol: &Tolerances) -> SimplexOptions {
    options.opt_tol = tol.opt;
    options.feas_tol = tol.feas;
    options
}

/// Maps the unified tolerance vocabulary onto active-set/IPM QP options.
fn qp_with(mut options: QpOptions, tol: &Tolerances) -> QpOptions {
    options.feas_tol = tol.feas;
    options.step_tol = tol.opt;
    options.ipm.tol = tol.opt;
    options
}

/// LP via the bounded-variable revised simplex (ignores nothing: rejects
/// models with quadratic terms; integrality marks are relaxed).
#[derive(Debug, Clone, Default)]
pub struct SimplexSolver {
    /// Simplex options for each solve.
    pub options: SimplexOptions,
}

impl Solver for SimplexSolver {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn solve(
        &self,
        model: &Model,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        if model.is_quadratic() {
            return Err(OptimError::InvalidModel {
                what: "simplex solver cannot handle quadratic objective terms".to_string(),
            });
        }
        let out = model.solve_budgeted(&self.options, budget)?;
        Ok(out.map(|s| Solution {
            x: s.x,
            objective: s.objective,
            row_duals: s.duals,
            reduced_costs: s.reduced_costs,
            proved_optimal: true,
            iterations: s.iterations,
            nodes: 0,
            basis: s.basis,
        }))
    }

    fn solve_warm(
        &self,
        model: &Model,
        budget: &SolveBudget,
        warm: Option<&Basis>,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        let Some(warm) = warm else { return self.solve(model, budget) };
        let mut warmed = self.clone();
        warmed.options.warm = Some(warm.clone());
        warmed.solve(model, budget)
    }

    fn with_tolerances(&self, tol: &Tolerances) -> Box<dyn Solver> {
        Box::new(SimplexSolver { options: simplex_with(self.options.clone(), tol) })
    }
}

/// Maps a QP kernel solution (minimization form over the dense view) back
/// to the unified format on the original model.
///
/// The kernel reports multipliers for the stationarity system
/// `Hx + c + A_eq'ν + A_in'λ = 0` of the *minimization* form, which gives
/// `∂obj_min/∂b_eq = −ν` and `∂obj_min/∂b_in = −λ`. Converting to the
/// model's stated sense multiplies by `sign`; a `Ge` row that was negated
/// into the dense `Le` block flips once more; and the bound rows fold into
/// per-variable reduced costs `rc_j = sign·(λ_lower_j − λ_upper_j)`.
fn qp_to_solution(model: &Model, dense: &DenseQp, s: QpSolution) -> Solution {
    let sign = dense.sign;
    let mut row_duals = vec![0.0; model.num_rows()];
    for (k, &row) in dense.eq_src.iter().enumerate() {
        row_duals[row] = sign * -s.eq_duals[k];
    }
    let mut reduced_costs = vec![0.0; model.num_vars()];
    for (k, src) in dense.ineq_src.iter().enumerate() {
        let lam = s.ineq_duals[k];
        match *src {
            IneqSrc::Row { row, negated: false } => row_duals[row] = sign * -lam,
            IneqSrc::Row { row, negated: true } => row_duals[row] = sign * lam,
            IneqSrc::Lower(j) => reduced_costs[j] += sign * lam,
            IneqSrc::Upper(j) => reduced_costs[j] -= sign * lam,
        }
    }
    let objective = model.objective_value(&s.x);
    Solution {
        x: s.x,
        objective,
        row_duals,
        reduced_costs,
        proved_optimal: true,
        iterations: s.iterations,
        nodes: 0,
        basis: None,
    }
}

/// Maps an LP [`Basis`] onto the dense QP view's inequality indices: the
/// rows and bounds the basis held tight become the warm working-set hint.
/// Returns `None` when the basis was recorded against different dimensions.
fn qp_warm_hint(model: &Model, dense: &DenseQp, warm: &Basis) -> Option<Vec<usize>> {
    if !warm.dims_match(model.num_vars(), model.num_rows()) {
        return None;
    }
    let n = model.num_vars();
    let mut hint = Vec::new();
    for (k, src) in dense.ineq_src.iter().enumerate() {
        let tight = match *src {
            // A nonbasic slack means the row held with equality.
            IneqSrc::Row { row, .. } => !matches!(warm.statuses[n + row], BasisStatus::Basic),
            IneqSrc::Lower(j) => matches!(warm.statuses[j], BasisStatus::AtLower),
            IneqSrc::Upper(j) => matches!(warm.statuses[j], BasisStatus::AtUpper),
        };
        if tight {
            hint.push(k);
        }
    }
    Some(hint)
}

/// Re-expresses a QP kernel partial (minimization form) in the model's
/// stated sense.
fn qp_reprice_partial(model: &Model, sign: f64, mut p: Partial) -> Partial {
    if let Some(x) = &p.x {
        p.objective = Some(model.objective_value(x));
    } else {
        p.objective = p.objective.map(|o| sign * o);
    }
    p.bound = p.bound.map(|b| sign * b);
    p
}

/// QP via the primal active-set method (integrality marks and
/// complementarity pairs are relaxed; also solves pure LPs, though the
/// simplex is the better tool for those).
#[derive(Debug, Clone, Default)]
pub struct ActiveSetSolver {
    /// Active-set options for each solve.
    pub options: QpOptions,
}

impl Solver for ActiveSetSolver {
    fn name(&self) -> &'static str {
        "active-set"
    }

    fn solve(
        &self,
        model: &Model,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        model.validate()?;
        let dense = DenseQp::from_model(model);
        match active_set::solve_budgeted(&dense, &self.options, budget)? {
            SolveOutcome::Solved(s) => {
                Ok(SolveOutcome::Solved(qp_to_solution(model, &dense, s)))
            }
            SolveOutcome::Partial(p) => {
                Ok(SolveOutcome::Partial(qp_reprice_partial(model, dense.sign, p)))
            }
        }
    }

    fn solve_warm(
        &self,
        model: &Model,
        budget: &SolveBudget,
        warm: Option<&Basis>,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        let Some(warm) = warm else { return self.solve(model, budget) };
        model.validate()?;
        let dense = DenseQp::from_model(model);
        let mut options = self.options.clone();
        options.warm_active = qp_warm_hint(model, &dense, warm);
        match active_set::solve_budgeted(&dense, &options, budget)? {
            SolveOutcome::Solved(s) => {
                Ok(SolveOutcome::Solved(qp_to_solution(model, &dense, s)))
            }
            SolveOutcome::Partial(p) => {
                Ok(SolveOutcome::Partial(qp_reprice_partial(model, dense.sign, p)))
            }
        }
    }

    fn with_tolerances(&self, tol: &Tolerances) -> Box<dyn Solver> {
        Box::new(ActiveSetSolver { options: qp_with(self.options.clone(), tol) })
    }
}

/// QP via the primal-dual interior-point method (integrality marks and
/// complementarity pairs are relaxed).
#[derive(Debug, Clone, Default)]
pub struct IpmSolver {
    /// Interior-point options for each solve.
    pub options: IpmOptions,
}

impl Solver for IpmSolver {
    fn name(&self) -> &'static str {
        "interior-point"
    }

    fn solve(
        &self,
        model: &Model,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        model.validate()?;
        let dense = DenseQp::from_model(model);
        match ipm::solve_budgeted(&dense, &self.options, budget)? {
            SolveOutcome::Solved(s) => {
                Ok(SolveOutcome::Solved(qp_to_solution(model, &dense, s)))
            }
            SolveOutcome::Partial(p) => {
                Ok(SolveOutcome::Partial(qp_reprice_partial(model, dense.sign, p)))
            }
        }
    }

    fn with_tolerances(&self, tol: &Tolerances) -> Box<dyn Solver> {
        let mut options = self.options.clone();
        options.tol = tol.opt;
        Box::new(IpmSolver { options })
    }
}

/// QP with the same escalation the dispatch ladder's `QpMethod::Auto` used:
/// active set first; degenerate stalls and numerical breakdowns fall back to
/// the interior-point method, keeping a feasible active-set partial when the
/// fallback cannot finish either.
#[derive(Debug, Clone, Default)]
pub struct QpAutoSolver {
    /// Active-set options (the embedded IPM options drive the fallback).
    pub options: QpOptions,
}

impl Solver for QpAutoSolver {
    fn name(&self) -> &'static str {
        "qp-auto"
    }

    fn solve(
        &self,
        model: &Model,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        model.validate()?;
        let dense = DenseQp::from_model(model);
        match active_set::solve_budgeted(&dense, &self.options, budget) {
            Ok(SolveOutcome::Solved(s)) => {
                Ok(SolveOutcome::Solved(qp_to_solution(model, &dense, s)))
            }
            Ok(SolveOutcome::Partial(p)) => {
                if budget.wall_tripped().is_some() {
                    return Ok(SolveOutcome::Partial(qp_reprice_partial(model, dense.sign, p)));
                }
                match ipm::solve_budgeted(&dense, &self.options.ipm, budget) {
                    Ok(SolveOutcome::Solved(s)) => {
                        Ok(SolveOutcome::Solved(qp_to_solution(model, &dense, s)))
                    }
                    // The active-set partial carries a feasible iterate;
                    // prefer it over an infeasible interior partial.
                    _ => Ok(SolveOutcome::Partial(qp_reprice_partial(model, dense.sign, p))),
                }
            }
            Err(OptimError::IterationLimit { .. }) | Err(OptimError::Numerical { .. }) => {
                match ipm::solve_budgeted(&dense, &self.options.ipm, budget)? {
                    SolveOutcome::Solved(s) => {
                        Ok(SolveOutcome::Solved(qp_to_solution(model, &dense, s)))
                    }
                    SolveOutcome::Partial(p) => {
                        Ok(SolveOutcome::Partial(qp_reprice_partial(model, dense.sign, p)))
                    }
                }
            }
            Err(e) => Err(e),
        }
    }

    fn with_tolerances(&self, tol: &Tolerances) -> Box<dyn Solver> {
        Box::new(QpAutoSolver { options: qp_with(self.options.clone(), tol) })
    }
}

/// MILP via branch and bound on the model's integrality marks (a model
/// without marks degenerates to a single root LP).
#[derive(Debug, Clone, Default)]
pub struct BranchBoundSolver {
    /// Branch-and-bound options for each solve.
    pub options: MilpOptions,
}

impl Solver for BranchBoundSolver {
    fn name(&self) -> &'static str {
        "branch-and-bound"
    }

    fn solve(
        &self,
        model: &Model,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        if model.is_quadratic() {
            return Err(OptimError::InvalidModel {
                what: "branch-and-bound solver cannot handle quadratic objective terms"
                    .to_string(),
            });
        }
        let milp = MilpProblem::from_model(model.clone());
        let out = milp.solve_budgeted(&self.options, budget)?;
        Ok(out.map(|s| Solution {
            x: s.x,
            objective: s.objective,
            row_duals: Vec::new(),
            reduced_costs: Vec::new(),
            proved_optimal: s.proved_optimal,
            iterations: s.lp_iterations,
            nodes: s.nodes,
            basis: s.basis,
        }))
    }

    fn solve_warm(
        &self,
        model: &Model,
        budget: &SolveBudget,
        warm: Option<&Basis>,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        let Some(warm) = warm else { return self.solve(model, budget) };
        let mut warmed = self.clone();
        warmed.options.simplex.warm = Some(warm.clone());
        warmed.solve(model, budget)
    }

    fn with_tolerances(&self, tol: &Tolerances) -> Box<dyn Solver> {
        let mut options = self.options.clone();
        options.int_tol = tol.int;
        options.gap_abs = tol.gap;
        options.simplex = simplex_with(options.simplex, tol);
        Box::new(BranchBoundSolver { options })
    }
}

/// MPEC via branching on the model's complementarity pairs.
#[derive(Debug, Clone, Default)]
pub struct MpecSolver {
    /// Complementarity branch-and-bound options for each solve.
    pub options: MpecOptions,
}

impl Solver for MpecSolver {
    fn name(&self) -> &'static str {
        "mpec"
    }

    fn solve(
        &self,
        model: &Model,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        if model.is_quadratic() {
            return Err(OptimError::InvalidModel {
                what: "mpec solver cannot handle quadratic objective terms".to_string(),
            });
        }
        let mpec = MpecProblem::from_model(model.clone());
        let out = mpec.solve_budgeted(&self.options, budget)?;
        Ok(out.map(|s| Solution {
            x: s.x,
            objective: s.objective,
            row_duals: Vec::new(),
            reduced_costs: Vec::new(),
            proved_optimal: s.proved_optimal,
            iterations: s.lp_iterations,
            nodes: s.nodes,
            basis: s.basis,
        }))
    }

    fn solve_warm(
        &self,
        model: &Model,
        budget: &SolveBudget,
        warm: Option<&Basis>,
    ) -> Result<SolveOutcome<Solution>, OptimError> {
        let Some(warm) = warm else { return self.solve(model, budget) };
        let mut warmed = self.clone();
        warmed.options.simplex.warm = Some(warm.clone());
        warmed.solve(model, budget)
    }

    fn with_tolerances(&self, tol: &Tolerances) -> Box<dyn Solver> {
        let mut options = self.options.clone();
        options.comp_tol = tol.feas;
        options.gap_abs = 100.0 * tol.opt;
        options.simplex = simplex_with(options.simplex, tol);
        Box::new(MpecSolver { options })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Row;

    #[test]
    fn simplex_solver_round_trip() {
        let mut m = Model::maximize();
        let x = m.add_var(0.0, f64::INFINITY, 3.0);
        let y = m.add_var(0.0, f64::INFINITY, 2.0);
        m.add_row(Row::le(4.0).coef(x, 1.0).coef(y, 1.0));
        m.add_row(Row::le(6.0).coef(x, 1.0).coef(y, 3.0));
        let s = SimplexSolver::default()
            .solve(&m, &SolveBudget::unlimited())
            .unwrap()
            .solved()
            .unwrap();
        assert!((s.objective - 12.0).abs() < 1e-9);
        assert!(s.proved_optimal);
        assert_eq!(s.nodes, 0);
    }

    #[test]
    fn simplex_solver_rejects_quadratic() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_quad(x, x, 2.0);
        let err = SimplexSolver::default().solve(&m, &SolveBudget::unlimited());
        assert!(matches!(err, Err(OptimError::InvalidModel { .. })));
    }

    /// The two-generator dispatch QP whose balance dual (LMP) is known:
    /// min 10x + 8y + 0.5(0.02x² + 0.04y²) s.t. x + y = 200, bounds [0,300]
    /// has optimum (100, 100) and ∂obj/∂demand = 12.
    fn dispatch_qp() -> (Model, super::super::RowId) {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 300.0, 10.0);
        let y = m.add_var(0.0, 300.0, 8.0);
        m.add_quad(x, x, 0.02);
        m.add_quad(y, y, 0.04);
        let balance = m.add_row(Row::eq(200.0).coef(x, 1.0).coef(y, 1.0));
        (m, balance)
    }

    #[test]
    fn active_set_solver_reports_stated_sense_duals() {
        let (m, balance) = dispatch_qp();
        let s = ActiveSetSolver::default()
            .solve(&m, &SolveBudget::unlimited())
            .unwrap()
            .solved()
            .unwrap();
        assert!((s.x[0] - 100.0).abs() < 1e-5, "{:?}", s.x);
        assert!((s.row_duals[balance.index()] - 12.0).abs() < 1e-4, "{:?}", s.row_duals);
    }

    #[test]
    fn ipm_solver_matches_active_set() {
        let (m, balance) = dispatch_qp();
        let s = IpmSolver::default()
            .solve(&m, &SolveBudget::unlimited())
            .unwrap()
            .solved()
            .unwrap();
        assert!((s.x[0] - 100.0).abs() < 1e-4, "{:?}", s.x);
        assert!((s.row_duals[balance.index()] - 12.0).abs() < 1e-3, "{:?}", s.row_duals);
    }

    #[test]
    fn qp_solver_max_sense_dual_sign() {
        // max 2x − x² with x ≤ 0.5: optimum x = 0.5, obj = 0.75, and the
        // stated-sense row dual is ∂obj/∂rhs = 2 − 2x = 1.
        let mut m = Model::maximize();
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 2.0);
        m.add_quad(x, x, -2.0);
        let cap = m.add_row(Row::le(0.5).coef(x, 1.0));
        let s = ActiveSetSolver::default()
            .solve(&m, &SolveBudget::unlimited())
            .unwrap()
            .solved()
            .unwrap();
        assert!((s.x[0] - 0.5).abs() < 1e-8, "{:?}", s.x);
        assert!((s.objective - 0.75).abs() < 1e-8);
        assert!((s.row_duals[cap.index()] - 1.0).abs() < 1e-6, "{:?}", s.row_duals);
    }

    #[test]
    fn branch_bound_solver_honors_integrality_marks() {
        // max 5x + 4y, 6x + 4y <= 24, x + 2y <= 6: LP relaxation peaks at
        // (3, 1.5) = 21; the integer optimum is (4, 0) = 20.
        let mut m = Model::maximize();
        let x = m.add_var(0.0, 10.0, 5.0);
        let y = m.add_var(0.0, 10.0, 4.0);
        m.add_row(Row::le(24.0).coef(x, 6.0).coef(y, 4.0));
        m.add_row(Row::le(6.0).coef(x, 1.0).coef(y, 2.0));
        m.set_integer(x);
        m.set_integer(y);
        let s = BranchBoundSolver::default()
            .solve(&m, &SolveBudget::unlimited())
            .unwrap()
            .solved()
            .unwrap();
        assert!((s.objective - 20.0).abs() < 1e-7, "obj={}", s.objective);
        assert!(s.proved_optimal);
        assert!(s.nodes >= 1);
    }

    #[test]
    fn mpec_solver_honors_pairs() {
        let mut m = Model::maximize();
        let x = m.add_var(0.0, 2.0, 1.0);
        let y = m.add_var(0.0, 2.0, 1.0);
        m.add_row(Row::le(3.0).coef(x, 1.0).coef(y, 1.0));
        m.add_pair(x, y);
        let s = MpecSolver::default()
            .solve(&m, &SolveBudget::unlimited())
            .unwrap()
            .solved()
            .unwrap();
        assert!((s.objective - 2.0).abs() < 1e-7, "obj={}", s.objective);
        assert!((s.x[0] * s.x[1]).abs() < 1e-6);
    }
}
