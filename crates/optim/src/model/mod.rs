//! The unified sparse optimization model IR.
//!
//! [`Model`] is the one constraint-storage type behind every solver family
//! in this crate. It stores:
//!
//! - **Sparse constraint columns.** The constraint matrix lives
//!   column-major as jagged `(row, coef)` lists (convertible to a packed
//!   [`CscMatrix`](ed_linalg::CscMatrix) via [`Model::to_csc`]), shared
//!   copy-on-write across clones so branch-and-bound nodes and per-subproblem
//!   objective patches never copy row storage.
//! - **Variable bounds and row senses/rhs.**
//! - **Capability flags** that turn the same data structure into each
//!   problem class: a quadratic-term list ([`Model::add_quad`]) makes it a
//!   QP, integrality marks ([`Model::set_integer`]) make it a MILP, and
//!   complementarity pairs ([`Model::add_pair`]) make it an MPEC.
//!
//! The legacy `LpProblem` name is a type alias for `Model`; `QpProblem`,
//! `MilpProblem`, and `MpecProblem` are thin wrappers that hold no
//! constraint storage of their own.
//!
//! The [`presolve`] submodule reduces a model before solving and maps
//! solutions back exactly; the [`solver`] submodule defines the [`Solver`]
//! trait implemented by all four solver families.
//!
//! [`Solver`]: solver::Solver

pub mod presolve;
pub mod solver;

pub use presolve::{Postsolve, PresolveOptions, PresolveStats, Presolved};
pub use solver::{
    ActiveSetSolver, BranchBoundSolver, IpmSolver, MpecSolver, QpAutoSolver, SimplexSolver,
    Solution, Solver,
};

use crate::budget::{SolveBudget, SolveOutcome};
use crate::lp::simplex::{self, SimplexOptions};
use crate::OptimError;
use ed_linalg::CscMatrix;
use std::sync::Arc;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Min,
    /// Maximize the objective.
    Max,
}

/// Relational sense of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSense {
    /// `a'x <= rhs`
    Le,
    /// `a'x >= rhs`
    Ge,
    /// `a'x == rhs`
    Eq,
}

/// Opaque handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based column index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub(crate) usize);

impl RowId {
    /// Zero-based row index of the constraint.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A constraint row under construction, used with [`Model::add_row`].
///
/// # Example
///
/// ```
/// use ed_optim::lp::{LpProblem, Row};
///
/// let mut lp = LpProblem::minimize();
/// let x = lp.add_var(0.0, 1.0, 1.0);
/// let y = lp.add_var(0.0, 1.0, 1.0);
/// lp.add_row(Row::ge(1.0).coef(x, 1.0).coef(y, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Row {
    pub(crate) sense: RowSense,
    pub(crate) rhs: f64,
    pub(crate) coeffs: Vec<(VarId, f64)>,
}

impl Row {
    /// Starts a `<= rhs` row.
    pub fn le(rhs: f64) -> Row {
        Row { sense: RowSense::Le, rhs, coeffs: Vec::new() }
    }

    /// Starts a `>= rhs` row.
    pub fn ge(rhs: f64) -> Row {
        Row { sense: RowSense::Ge, rhs, coeffs: Vec::new() }
    }

    /// Starts an `== rhs` row.
    pub fn eq(rhs: f64) -> Row {
        Row { sense: RowSense::Eq, rhs, coeffs: Vec::new() }
    }

    /// Adds (accumulates) a coefficient for `var`.
    pub fn coef(mut self, var: VarId, value: f64) -> Row {
        if value != 0.0 {
            self.coeffs.push((var, value));
        }
        self
    }

    /// Adds many coefficients at once.
    pub fn coefs<I: IntoIterator<Item = (VarId, f64)>>(mut self, iter: I) -> Row {
        for (v, c) in iter {
            if c != 0.0 {
                self.coeffs.push((v, c));
            }
        }
        self
    }
}

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
}

/// Solution of an LP.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status (currently always [`LpStatus::Optimal`]; infeasible
    /// and unbounded outcomes are reported through [`OptimError`]).
    pub status: LpStatus,
    /// Optimal objective value in the problem's own sense.
    pub objective: f64,
    /// Primal values for the structural variables, indexed by [`VarId`].
    pub x: Vec<f64>,
    /// Row duals `y` indexed by [`RowId`].
    ///
    /// Convention: internally every row is written `a'x + s = rhs`, and
    /// `duals[i]` is the simplex multiplier of that equality **for the
    /// minimization form** of the problem. For a maximization problem the
    /// sign is flipped so that duals refer to the stated objective. For an
    /// `Eq` row this is the ordinary Lagrange multiplier.
    pub duals: Vec<f64>,
    /// Reduced costs of the structural variables (minimization form,
    /// sign-flipped for maximization problems like `duals`).
    pub reduced_costs: Vec<f64>,
    /// Total simplex iterations across both phases.
    pub iterations: usize,
    /// The optimal basis, reusable as a warm start for a sibling model
    /// (same constraints, patched objective) or a child model (same
    /// objective, patched bounds). `None` when the solution was mapped
    /// through postsolve — a reduced-space basis does not transfer to the
    /// full space.
    pub basis: Option<crate::lp::basis::Basis>,
    /// Whether a warm-start basis was actually installed for this solve
    /// (`false` also when one was supplied but rejected — a cold restart).
    pub warm_used: bool,
    /// Dual simplex pivots spent restoring primal feasibility after a
    /// warm start (0 on cold or primal-feasible-warm solves).
    pub dual_iterations: usize,
}

/// The unified sparse optimization model: bounded variables, sparse
/// constraint columns, and optional quadratic / integrality /
/// complementarity annotations. See the [module docs](self).
///
/// Build with [`Model::minimize`]/[`Model::maximize`], add variables and
/// rows, then call [`Model::solve`] (continuous linear relaxation) or hand
/// the model to a capability-aware solver (`QpProblem`, `MilpProblem`,
/// `MpecProblem`, or anything implementing [`solver::Solver`]).
///
/// # Example
///
/// ```
/// use ed_optim::lp::{LpProblem, Row};
///
/// # fn main() -> Result<(), ed_optim::OptimError> {
/// // Economic-dispatch-flavored toy: two generators serve 300 MW,
/// // generator 1 twice as expensive as generator 2.
/// let mut lp = LpProblem::minimize();
/// let p1 = lp.add_var(0.0, 300.0, 2.0);
/// let p2 = lp.add_var(0.0, 200.0, 1.0);
/// lp.add_row(Row::eq(300.0).coef(p1, 1.0).coef(p2, 1.0));
/// let sol = lp.solve()?;
/// assert_eq!(sol.x, vec![100.0, 200.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) obj: Vec<f64>,
    /// Constraint columns: `cols[j]` lists `(row, coef)` entries of column
    /// `j` in increasing row order (rows are appended in order and each row
    /// contributes at most a few entries per column; duplicates within a
    /// `(row, col)` cell are kept in insertion order and coalesced by the
    /// consumers). Shared copy-on-write: clones that only patch bounds or
    /// the objective never copy the matrix.
    pub(crate) cols: Arc<Vec<Vec<(usize, f64)>>>,
    pub(crate) row_sense: Vec<RowSense>,
    pub(crate) rhs: Vec<f64>,
    /// Quadratic objective terms as entries of a symmetric matrix `H`
    /// (both `(i, j)` and `(j, i)` stored for off-diagonal terms); the
    /// objective is `0.5·x'Hx + c'x`.
    pub(crate) quad: Vec<(usize, usize, f64)>,
    /// Variables constrained to integer values (branch-and-bound honors
    /// these; continuous solves ignore them).
    pub(crate) integers: Vec<VarId>,
    /// Complementarity pairs `x_a · x_b = 0` (MPEC branching honors these;
    /// other solvers ignore them). Presolve never eliminates pair columns.
    pub(crate) pairs: Vec<(VarId, VarId)>,
}

impl Model {
    fn empty(sense: Sense) -> Model {
        Model {
            sense,
            lb: Vec::new(),
            ub: Vec::new(),
            obj: Vec::new(),
            cols: Arc::new(Vec::new()),
            row_sense: Vec::new(),
            rhs: Vec::new(),
            quad: Vec::new(),
            integers: Vec::new(),
            pairs: Vec::new(),
        }
    }

    /// Creates an empty minimization problem.
    pub fn minimize() -> Model {
        Model::empty(Sense::Min)
    }

    /// Creates an empty maximization problem.
    pub fn maximize() -> Model {
        Model::empty(Sense::Max)
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable with bounds `[lb, ub]` and objective coefficient `obj`.
    ///
    /// Use `f64::NEG_INFINITY` / `f64::INFINITY` for free bounds.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.lb.push(lb);
        self.ub.push(ub);
        self.obj.push(obj);
        Arc::make_mut(&mut self.cols).push(Vec::new());
        VarId(self.lb.len() - 1)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.lb.len()
    }

    /// Handles of all variables, in creation order.
    pub fn var_ids(&self) -> Vec<VarId> {
        (0..self.num_vars()).map(VarId).collect()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    /// Number of stored constraint-matrix nonzeros.
    pub fn num_nonzeros(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }

    /// Adds a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if the row references a variable that was not created by this
    /// problem (index out of range).
    pub fn add_row(&mut self, row: Row) -> RowId {
        for &(v, _) in &row.coeffs {
            assert!(v.0 < self.num_vars(), "row references unknown variable {v:?}");
        }
        let i = self.rhs.len();
        let cols = Arc::make_mut(&mut self.cols);
        for &(v, c) in &row.coeffs {
            cols[v.0].push((i, c));
        }
        self.row_sense.push(row.sense);
        self.rhs.push(row.rhs);
        RowId(i)
    }

    /// Overwrites the bounds of `var`.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        self.lb[var.0] = lb;
        self.ub[var.0] = ub;
    }

    /// Current bounds of `var`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.lb[var.0], self.ub[var.0])
    }

    /// Overwrites the objective coefficient of `var`.
    pub fn set_objective_coef(&mut self, var: VarId, obj: f64) {
        self.obj[var.0] = obj;
    }

    /// Clears the linear objective (all coefficients to zero). Quadratic
    /// terms, if any, are untouched — see [`Model::clear_quad`].
    pub fn clear_objective(&mut self) {
        self.obj.iter_mut().for_each(|c| *c = 0.0);
    }

    /// Changes the optimization sense.
    pub fn set_sense(&mut self, sense: Sense) {
        self.sense = sense;
    }

    /// Accumulates a quadratic objective entry `H[i][j] += value`. The
    /// objective is `0.5·x'Hx + c'x`; callers are responsible for storing
    /// `H` symmetrically (add both `(i, j)` and `(j, i)` for off-diagonal
    /// terms).
    ///
    /// # Panics
    ///
    /// Panics if either variable is unknown.
    pub fn add_quad(&mut self, i: VarId, j: VarId, value: f64) {
        assert!(i.0 < self.num_vars() && j.0 < self.num_vars(), "quad term on unknown variable");
        if value != 0.0 {
            self.quad.push((i.0, j.0, value));
        }
    }

    /// Removes every quadratic term (the model degrades to an LP).
    pub fn clear_quad(&mut self) {
        self.quad.clear();
    }

    /// The stored quadratic terms as `(row, col, value)` entries of `H`.
    pub fn quad_terms(&self) -> &[(usize, usize, f64)] {
        &self.quad
    }

    /// `true` when the model carries quadratic objective terms.
    pub fn is_quadratic(&self) -> bool {
        !self.quad.is_empty()
    }

    /// Marks a variable as integer-constrained.
    ///
    /// # Panics
    ///
    /// Panics if the variable is unknown.
    pub fn set_integer(&mut self, var: VarId) {
        assert!(var.0 < self.num_vars(), "integer mark on unknown variable");
        if !self.integers.contains(&var) {
            self.integers.push(var);
        }
    }

    /// The integer-constrained variables, in marking order.
    pub fn integers(&self) -> &[VarId] {
        &self.integers
    }

    /// Adds a complementarity pair `a·b = 0`.
    ///
    /// # Panics
    ///
    /// Panics if either variable is unknown.
    pub fn add_pair(&mut self, a: VarId, b: VarId) {
        assert!(a.0 < self.num_vars() && b.0 < self.num_vars(), "pair on unknown variable");
        self.pairs.push((a, b));
    }

    /// The complementarity pairs.
    pub fn pairs(&self) -> &[(VarId, VarId)] {
        &self.pairs
    }

    /// A clone with the combinatorial side conditions — integer marks and
    /// complementarity pairs — dropped. This is the model each LP/QP node
    /// relaxation actually solves, and the model a relaxation solution
    /// should be *certified* against: auditing a root relaxation against
    /// the paired model would report the (expected) pair violations
    /// instead of solver faults. Bounds, rows, and quadratic terms are
    /// untouched; the matrix is shared copy-on-write, so this is cheap.
    #[must_use]
    pub fn continuous_relaxation(&self) -> Model {
        let mut relaxed = self.clone();
        relaxed.integers.clear();
        relaxed.pairs.clear();
        relaxed
    }

    /// The stored entries of constraint column `j` as `(row, coef)` pairs in
    /// increasing row order (duplicates possible; consumers coalesce).
    pub(crate) fn col(&self, j: usize) -> &[(usize, f64)] {
        &self.cols[j]
    }

    /// Row-major view of the constraint matrix: `rows[i]` lists
    /// `(col, coef)` entries in increasing column order. `O(nnz)` — built on
    /// demand for presolve and the dense QP view, not stored.
    pub(crate) fn rows_view(&self) -> Vec<Vec<(usize, f64)>> {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.num_rows()];
        for (j, col) in self.cols.iter().enumerate() {
            for &(i, c) in col {
                rows[i].push((j, c));
            }
        }
        rows
    }

    /// Packs the constraint matrix into compressed sparse column form
    /// (entries sorted and coalesced, explicit zeros dropped).
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_columns(self.num_rows(), &self.cols)
    }

    /// Validates model consistency: bounds ordered and non-NaN, finite rhs
    /// and coefficients, finite bounds on integer variables, and
    /// complementarity pairs whose variables admit zero. This is the one
    /// validation path shared by every solver family.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidModel`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), OptimError> {
        for (i, (&l, &u)) in self.lb.iter().zip(&self.ub).enumerate() {
            if l > u {
                return Err(OptimError::InvalidModel {
                    what: format!("variable {i} has lb {l} > ub {u}"),
                });
            }
            if l.is_nan() || u.is_nan() {
                return Err(OptimError::InvalidModel { what: format!("variable {i} has NaN bound") });
            }
        }
        for (i, &r) in self.rhs.iter().enumerate() {
            if !r.is_finite() {
                return Err(OptimError::InvalidModel { what: format!("row {i} has non-finite rhs") });
            }
        }
        for col in self.cols.iter() {
            for &(i, c) in col {
                if !c.is_finite() {
                    return Err(OptimError::InvalidModel {
                        what: format!("row {i} has non-finite coefficient"),
                    });
                }
            }
        }
        for &(_, _, q) in &self.quad {
            if !q.is_finite() {
                return Err(OptimError::InvalidModel {
                    what: "non-finite quadratic term".to_string(),
                });
            }
        }
        for &v in &self.integers {
            let (l, u) = (self.lb[v.0], self.ub[v.0]);
            if !l.is_finite() || !u.is_finite() {
                return Err(OptimError::InvalidModel {
                    what: format!("integer variable {} must have finite bounds [{l}, {u}]", v.0),
                });
            }
        }
        for &(a, b) in &self.pairs {
            for v in [a, b] {
                if self.lb[v.0] > 0.0 || self.ub[v.0] < 0.0 {
                    return Err(OptimError::InvalidModel {
                        what: format!(
                            "complementarity variable {} cannot be zero within its bounds",
                            v.0
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Solves the continuous linear relaxation with default options
    /// (quadratic terms, integer marks, and pairs are ignored — use the
    /// capability-aware wrappers for those).
    ///
    /// # Errors
    ///
    /// - [`OptimError::Infeasible`] if no feasible point exists.
    /// - [`OptimError::Unbounded`] if the objective is unbounded.
    /// - [`OptimError::IterationLimit`] / [`OptimError::Numerical`] on solver
    ///   trouble.
    pub fn solve(&self) -> Result<LpSolution, OptimError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves with explicit simplex options. When the `ED_PRESOLVE`
    /// environment variable is `1`/`true`/`on`, the model is presolved
    /// first and the solution mapped back to the original space (exactly
    /// for `x`; duals of presolve-removed rows are recovered from
    /// stationarity).
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<LpSolution, OptimError> {
        self.validate()?;
        if presolve::env_enabled() {
            let pre = presolve::presolve(self)?;
            let sol = simplex::solve(&pre.reduced, options)?;
            return Ok(self.audit_postsolve(options, pre.postsolve.restore_lp_solution(sol)));
        }
        simplex::solve(self, options)
    }

    /// Post-postsolve audit (gated by `ED_CERTIFY`, default on): certifies
    /// a presolve-restored solution against *this* — the original,
    /// un-presolved — model. A failed certificate means the presolve or the
    /// postsolve mapping corrupted the answer; the repair is to re-solve
    /// directly without presolve, keeping whichever of the two certifies
    /// (falling back to the restored answer so callers' own ladders see the
    /// same shape either way).
    fn audit_postsolve(&self, options: &SimplexOptions, restored: LpSolution) -> LpSolution {
        if !crate::certify::env_enabled() {
            return restored;
        }
        let tol = crate::certify::Tolerances {
            feas: options.feas_tol,
            opt: options.opt_tol,
            ..crate::certify::Tolerances::default()
        };
        let as_solution = |s: &LpSolution| Solution {
            x: s.x.clone(),
            objective: s.objective,
            row_duals: s.duals.clone(),
            reduced_costs: s.reduced_costs.clone(),
            proved_optimal: true,
            iterations: s.iterations,
            nodes: 0,
            basis: None,
        };
        if crate::certify::certify(self, &as_solution(&restored), &tol).passed() {
            return restored;
        }
        match simplex::solve(self, options) {
            Ok(direct) if crate::certify::certify(self, &as_solution(&direct), &tol).passed() => {
                direct
            }
            _ => restored,
        }
    }

    /// Solves under a cooperative [`SolveBudget`]. Exhausting the budget is
    /// not an error: the solver returns [`SolveOutcome::Partial`] carrying
    /// the best feasible iterate reached (phase 2) or `x: None` if the trip
    /// happened before feasibility (phase 1), plus which budget tripped.
    /// Honors `ED_PRESOLVE` like [`Model::solve_with`].
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`], except the iteration budget in
    /// `budget` trips to a partial outcome instead of
    /// [`OptimError::IterationLimit`].
    pub fn solve_budgeted(
        &self,
        options: &SimplexOptions,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<LpSolution>, OptimError> {
        self.validate()?;
        if presolve::env_enabled() {
            let pre = presolve::presolve(self)?;
            return Ok(match simplex::solve_budgeted(&pre.reduced, options, budget)? {
                SolveOutcome::Solved(sol) => SolveOutcome::Solved(
                    self.audit_postsolve(options, pre.postsolve.restore_lp_solution(sol)),
                ),
                SolveOutcome::Partial(p) => {
                    SolveOutcome::Partial(pre.postsolve.restore_partial(p))
                }
            });
        }
        simplex::solve_budgeted(self, options, budget)
    }

    /// Evaluates the objective at a point (in the problem's own sense),
    /// including quadratic terms when present.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars());
        let linear: f64 = self.obj.iter().zip(x).map(|(c, v)| c * v).sum();
        if self.quad.is_empty() {
            return linear;
        }
        let quad: f64 = self.quad.iter().map(|&(i, j, q)| q * x[i] * x[j]).sum();
        linear + 0.5 * quad
    }

    /// Row activity `a_i'x` for each row at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn row_activities(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.num_vars());
        let rows = self.rows_view();
        rows.iter().map(|r| r.iter().map(|&(j, c)| c * x[j]).sum()).collect()
    }

    /// Maximum constraint/bound violation of a point (0 means feasible).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn infeasibility(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0_f64;
        for (i, &xi) in x.iter().enumerate() {
            worst = worst.max(self.lb[i] - xi).max(xi - self.ub[i]);
        }
        for ((&sense, &rhs), act) in
            self.row_sense.iter().zip(&self.rhs).zip(self.row_activities(x))
        {
            let v = match sense {
                RowSense::Le => act - rhs,
                RowSense::Ge => rhs - act,
                RowSense::Eq => (act - rhs).abs(),
            };
            worst = worst.max(v);
        }
        worst.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut lp = Model::minimize();
        let x = lp.add_var(0.0, 1.0, 2.0);
        let y = lp.add_var(-1.0, 1.0, -1.0);
        let r = lp.add_row(Row::le(3.0).coef(x, 1.0).coef(y, 2.0));
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_rows(), 1);
        assert_eq!(lp.num_nonzeros(), 2);
        assert_eq!(r.index(), 0);
        assert_eq!(lp.bounds(y), (-1.0, 1.0));
    }

    #[test]
    fn validate_catches_bad_bounds() {
        let mut lp = Model::minimize();
        let x = lp.add_var(1.0, 0.0, 0.0);
        let _ = x;
        assert!(matches!(lp.validate(), Err(OptimError::InvalidModel { .. })));
    }

    #[test]
    fn validate_catches_unbounded_integer_and_bad_pair() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        m.set_integer(x);
        assert!(matches!(m.validate(), Err(OptimError::InvalidModel { .. })));

        let mut m = Model::minimize();
        let a = m.add_var(1.0, 2.0, 0.0); // cannot be zero
        let b = m.add_var(0.0, 1.0, 0.0);
        m.add_pair(a, b);
        assert!(matches!(m.validate(), Err(OptimError::InvalidModel { .. })));
    }

    #[test]
    fn infeasibility_measures_violation() {
        let mut lp = Model::minimize();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(Row::ge(5.0).coef(x, 1.0));
        assert_eq!(lp.infeasibility(&[7.0]), 0.0);
        assert_eq!(lp.infeasibility(&[3.0]), 2.0);
        assert_eq!(lp.infeasibility(&[-1.0]), 6.0);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut lp = Model::minimize();
        let x = lp.add_var(0.0, 1.0, 1.0);
        let row = Row::eq(0.0).coef(x, 0.0);
        assert!(row.coeffs.is_empty());
        lp.add_row(row);
    }

    #[test]
    fn clones_share_constraint_storage() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_row(Row::le(1.0).coef(x, 1.0));
        let mut c = m.clone();
        assert!(Arc::ptr_eq(&m.cols, &c.cols), "clone must share columns");
        // Bound and objective patches keep sharing; row edits copy once.
        c.set_bounds(x, 0.0, 0.5);
        c.set_objective_coef(x, 3.0);
        assert!(Arc::ptr_eq(&m.cols, &c.cols));
        c.add_row(Row::ge(0.0).coef(x, 1.0));
        assert!(!Arc::ptr_eq(&m.cols, &c.cols));
        assert_eq!(m.num_rows(), 1);
        assert_eq!(c.num_rows(), 2);
    }

    #[test]
    fn quadratic_objective_value() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 10.0, 1.0);
        let y = m.add_var(0.0, 10.0, 0.0);
        m.add_quad(x, x, 2.0);
        m.add_quad(x, y, 1.0);
        m.add_quad(y, x, 1.0);
        // 0.5·(2x² + 2xy) + x  at (2, 3) = 4 + 6 + 2 = 12.
        assert!((m.objective_value(&[2.0, 3.0]) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn csc_export_coalesces() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 1.0, 1.0);
        let y = m.add_var(0.0, 1.0, 1.0);
        m.add_row(Row::le(1.0).coef(x, 1.0).coef(x, 2.0).coef(y, 1.0));
        let a = m.to_csc();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.col(0).collect::<Vec<_>>(), vec![(0, 3.0)]);
    }
}
