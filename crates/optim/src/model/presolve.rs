//! Presolve: shrink a [`Model`] before solving, and map solutions back.
//!
//! [`presolve`] applies the classic reductions —
//!
//! - **empty-row removal** (with consistency check),
//! - **singleton-row handling**: a one-entry equality row fixes its
//!   variable, a one-entry inequality row tightens a bound, and the row is
//!   removed either way,
//! - **fixed-variable elimination**: columns with `lb == ub` are substituted
//!   into the rows and the objective (including quadratic cross terms),
//! - **dominated duplicate-row removal**: rows with identical coefficient
//!   vectors keep only the tightest representative,
//! - **row/column equilibration scaling** by powers of two, which is exact
//!   in floating point and therefore losslessly invertible —
//!
//! to fixpoint, and returns [`Presolved`] carrying the reduced model, a
//! [`Postsolve`] that maps reduced solutions back to the original variable
//! space *exactly* (fixed values are reinserted verbatim; scaling undoes by
//! exact power-of-two multiplication), and a [`PresolveStats`] block for
//! benchmark reporting.
//!
//! Complementarity-pair columns are never eliminated (MPEC branching must
//! keep both sides of a pair addressable) and integer columns are never
//! scaled (scaling would break integrality); bound tightening applies to
//! both, with inward rounding for integers.
//!
//! Dual recovery: duals of removed rows are reconstructed from stationarity
//! (`rc_j = c_j − Σ_i y_i·a_ij`) by replaying removals in reverse, so
//! downstream LMP extraction keeps working with presolve enabled.
//!
//! The `ED_PRESOLVE` environment variable (`1`/`true`/`on`) routes the
//! continuous [`Model::solve`] entry points through presolve automatically;
//! everything here is also callable explicitly.

use super::{LpSolution, Model, RowSense, Sense, VarId};
use crate::budget::Partial;
use crate::OptimError;
use std::sync::Arc;

/// `true` when the `ED_PRESOLVE` environment variable enables presolve.
/// Read on every call so tests can toggle it in-process.
pub fn env_enabled() -> bool {
    matches!(
        std::env::var("ED_PRESOLVE").ok().as_deref(),
        Some("1" | "true" | "TRUE" | "on" | "ON")
    )
}

/// Tuning knobs for [`presolve_with`].
#[derive(Debug, Clone)]
pub struct PresolveOptions {
    /// Apply power-of-two row/column equilibration scaling (exactly
    /// invertible; integer and pair columns are exempt).
    pub scale: bool,
    /// Feasibility tolerance for consistency checks and bound crossings.
    pub feas_tol: f64,
    /// Integrality tolerance for rounding tightened integer bounds inward.
    pub int_tol: f64,
}

impl Default for PresolveOptions {
    fn default() -> PresolveOptions {
        let tol = crate::certify::Tolerances::default();
        PresolveOptions { scale: true, feas_tol: tol.feas, int_tol: tol.int }
    }
}

/// Size accounting for one presolve run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PresolveStats {
    /// Rows before reduction.
    pub rows_before: usize,
    /// Columns before reduction.
    pub cols_before: usize,
    /// Constraint nonzeros before reduction.
    pub nnz_before: usize,
    /// Rows after reduction.
    pub rows_after: usize,
    /// Columns after reduction.
    pub cols_after: usize,
    /// Constraint nonzeros after reduction.
    pub nnz_after: usize,
}

impl PresolveStats {
    /// Rows removed.
    pub fn rows_removed(&self) -> usize {
        self.rows_before - self.rows_after
    }

    /// Columns removed.
    pub fn cols_removed(&self) -> usize {
        self.cols_before - self.cols_after
    }

    /// Nonzeros removed.
    pub fn nnz_removed(&self) -> usize {
        self.nnz_before - self.nnz_after
    }

    /// Fraction of the model (rows + cols + nonzeros) removed, in `[0, 1]`.
    pub fn reduction_ratio(&self) -> f64 {
        let before = (self.rows_before + self.cols_before + self.nnz_before) as f64;
        if before == 0.0 {
            return 0.0;
        }
        let after = (self.rows_after + self.cols_after + self.nnz_after) as f64;
        (1.0 - after / before).max(0.0)
    }
}

/// Why a row was removed — drives dual recovery in [`Postsolve`].
#[derive(Debug, Clone, Copy)]
enum RemovedKind {
    /// No live entries; dual is 0.
    Empty,
    /// Dominated by a duplicate row; dual is 0 (the kept row carries it).
    Dominated,
    /// Single live entry `coef·x_col`; the row became a bound on `col`.
    Singleton {
        col: usize,
        coef: f64,
        /// The bound the row implied on `col` (in original variable units).
        implied: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct RemovedRow {
    row: usize,
    sense: RowSense,
    kind: RemovedKind,
}

/// Inverse map from reduced solutions back to the original model space.
///
/// Cheap to clone (the original columns are `Arc`-shared) and `Send + Sync`,
/// so one `Postsolve` can serve a parallel sweep.
#[derive(Debug, Clone)]
pub struct Postsolve {
    sense: Sense,
    n: usize,
    m: usize,
    col_map: Vec<Option<usize>>,
    row_map: Vec<Option<usize>>,
    /// Value of each eliminated column (original units); 0 for live columns.
    fixed_val: Vec<f64>,
    /// `x_orig = col_scale · x_reduced` (1 for eliminated columns).
    col_scale: Vec<f64>,
    /// `reduced row = row_scale · original row`, so
    /// `dual_orig = row_scale · dual_reduced`.
    row_scale: Vec<f64>,
    /// Constant folded out of the objective by eliminations.
    obj_offset: f64,
    /// Final tightened bounds (original units) — used to decide whether a
    /// removed singleton inequality row is the binding one.
    tight_lb: Vec<f64>,
    tight_ub: Vec<f64>,
    removed: Vec<RemovedRow>,
    orig_cols: Arc<Vec<Vec<(usize, f64)>>>,
    orig_obj: Vec<f64>,
    feas_tol: f64,
}

/// A presolved model plus its inverse map and size accounting.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced model (same sense and capability flags, remapped ids).
    pub reduced: Model,
    /// Maps reduced solutions back to original variable space.
    pub postsolve: Postsolve,
    /// Size deltas for reporting.
    pub stats: PresolveStats,
}

/// Runs presolve with default options. See the [module docs](self).
///
/// # Errors
///
/// [`OptimError::Infeasible`] when a reduction proves the model infeasible
/// (inconsistent empty row, crossed bounds, fractional fixed integer).
pub fn presolve(model: &Model) -> Result<Presolved, OptimError> {
    presolve_with(model, &PresolveOptions::default())
}

/// Runs presolve with explicit options.
///
/// # Errors
///
/// Same as [`presolve`].
pub fn presolve_with(model: &Model, opts: &PresolveOptions) -> Result<Presolved, OptimError> {
    let _t = ed_obs::timer("optim.presolve");
    let out = presolve_with_inner(model, opts);
    if ed_obs::enabled() {
        ed_obs::counter("optim.presolve.runs", 1);
        if let Ok(pre) = &out {
            ed_obs::counter("optim.presolve.rows_removed", pre.stats.rows_removed() as u64);
            ed_obs::counter("optim.presolve.cols_removed", pre.stats.cols_removed() as u64);
            ed_obs::counter("optim.presolve.nnz_removed", pre.stats.nnz_removed() as u64);
        }
    }
    out
}

fn presolve_with_inner(model: &Model, opts: &PresolveOptions) -> Result<Presolved, OptimError> {
    let n = model.num_vars();
    let m = model.num_rows();

    // Coalesced working copies (duplicate (row, col) entries summed).
    let wcols: Vec<Vec<(usize, f64)>> = model
        .cols
        .iter()
        .map(|col| {
            let mut c = col.clone();
            c.sort_by_key(|&(i, _)| i);
            coalesce(&mut c);
            c
        })
        .collect();
    let mut wrows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    for (j, col) in wcols.iter().enumerate() {
        for &(i, a) in col {
            wrows[i].push((j, a));
        }
    }

    let mut wlb = model.lb.clone();
    let mut wub = model.ub.clone();
    let mut wrhs = model.rhs.clone();
    // Accumulated |a·v| adjustments per row, for scale-aware tolerance.
    let mut adj_abs = vec![0.0_f64; m];

    let mut alive_row = vec![true; m];
    let mut alive_col = vec![true; n];
    let mut fixed_val = vec![0.0_f64; n];
    let mut removed: Vec<RemovedRow> = Vec::new();

    let mut is_pair = vec![false; n];
    for &(a, b) in &model.pairs {
        is_pair[a.0] = true;
        is_pair[b.0] = true;
    }
    let mut is_int = vec![false; n];
    for &v in &model.integers {
        is_int[v.0] = true;
    }

    let row_tol = |i: usize, wrhs: &[f64], adj: &[f64]| {
        opts.feas_tol * (1.0 + wrhs[i].abs() + adj[i])
    };

    let mut changed = true;
    while changed {
        changed = false;

        // Empty and singleton rows.
        for i in 0..m {
            if !alive_row[i] {
                continue;
            }
            let mut live: Option<(usize, f64)> = None;
            let mut count = 0usize;
            for &(j, a) in &wrows[i] {
                if alive_col[j] {
                    count += 1;
                    if count > 1 {
                        break;
                    }
                    live = Some((j, a));
                }
            }
            match count {
                0 => {
                    let tol = row_tol(i, &wrhs, &adj_abs);
                    let ok = match model.row_sense[i] {
                        RowSense::Le => wrhs[i] >= -tol,
                        RowSense::Ge => wrhs[i] <= tol,
                        RowSense::Eq => wrhs[i].abs() <= tol,
                    };
                    if !ok {
                        return Err(OptimError::Infeasible);
                    }
                    alive_row[i] = false;
                    removed.push(RemovedRow {
                        row: i,
                        sense: model.row_sense[i],
                        kind: RemovedKind::Empty,
                    });
                    changed = true;
                }
                1 => {
                    let (j, a) = live.expect("count == 1 implies a live entry");
                    let v = wrhs[i] / a;
                    let sense = model.row_sense[i];
                    // Which bound the row implies on x_j.
                    let upper = match sense {
                        RowSense::Eq => None, // fixes
                        RowSense::Le => Some(a > 0.0),
                        RowSense::Ge => Some(a < 0.0),
                    };
                    let btol = opts.feas_tol * (1.0 + v.abs());
                    match upper {
                        None => {
                            if v < wlb[j] - btol || v > wub[j] + btol {
                                return Err(OptimError::Infeasible);
                            }
                            if is_int[j] && (v - v.round()).abs() > opts.int_tol {
                                return Err(OptimError::Infeasible);
                            }
                            let v = v.clamp(wlb[j], wub[j]);
                            wlb[j] = v;
                            wub[j] = v;
                        }
                        Some(true) => {
                            let mut cand = v;
                            if is_int[j] {
                                cand = (cand + opts.int_tol).floor();
                            }
                            if cand < wub[j] {
                                if cand < wlb[j] - btol {
                                    return Err(OptimError::Infeasible);
                                }
                                wub[j] = cand.max(wlb[j]);
                            }
                        }
                        Some(false) => {
                            let mut cand = v;
                            if is_int[j] {
                                cand = (cand - opts.int_tol).ceil();
                            }
                            if cand > wlb[j] {
                                if cand > wub[j] + btol {
                                    return Err(OptimError::Infeasible);
                                }
                                wlb[j] = cand.min(wub[j]);
                            }
                        }
                    }
                    alive_row[i] = false;
                    removed.push(RemovedRow {
                        row: i,
                        sense,
                        kind: RemovedKind::Singleton { col: j, coef: a, implied: v },
                    });
                    changed = true;
                }
                _ => {}
            }
        }

        // Fixed-column elimination (pair columns stay addressable).
        for j in 0..n {
            if !alive_col[j] || is_pair[j] {
                continue;
            }
            if wlb[j] == wub[j] && wlb[j].is_finite() {
                let v = wlb[j];
                for &(i, a) in &wcols[j] {
                    if alive_row[i] {
                        wrhs[i] -= a * v;
                        adj_abs[i] += (a * v).abs();
                    }
                }
                alive_col[j] = false;
                fixed_val[j] = v;
                changed = true;
            }
        }
    }

    // Dominated duplicate rows: group live rows by their live coefficient
    // signature, keep the tightest per (signature, effective sense).
    {
        use std::collections::HashMap;
        let mut groups: HashMap<Vec<(usize, u64)>, Vec<usize>> = HashMap::new();
        for i in 0..m {
            if !alive_row[i] {
                continue;
            }
            let sig: Vec<(usize, u64)> = wrows[i]
                .iter()
                .filter(|&&(j, _)| alive_col[j])
                .map(|&(j, a)| (j, a.to_bits()))
                .collect();
            groups.entry(sig).or_default().push(i);
        }
        for (_, rows) in groups {
            if rows.len() < 2 {
                continue;
            }
            // Tightest bounds in the group (tolerant comparisons are not
            // needed: identical coefficient vectors make rhs directly
            // comparable).
            let eq_row = rows.iter().copied().find(|&i| model.row_sense[i] == RowSense::Eq);
            let best_le = rows
                .iter()
                .copied()
                .filter(|&i| model.row_sense[i] == RowSense::Le)
                .min_by(|&a, &b| wrhs[a].total_cmp(&wrhs[b]));
            let best_ge = rows
                .iter()
                .copied()
                .filter(|&i| model.row_sense[i] == RowSense::Ge)
                .max_by(|&a, &b| wrhs[a].total_cmp(&wrhs[b]));
            for &i in &rows {
                let drop = match model.row_sense[i] {
                    RowSense::Eq => eq_row.is_some_and(|k| k != i && wrhs[k] == wrhs[i]),
                    RowSense::Le => {
                        // Redundant against the kept Le twin or an equality.
                        best_le.is_some_and(|k| k != i && wrhs[k] <= wrhs[i])
                            || eq_row.is_some_and(|k| wrhs[k] <= wrhs[i])
                    }
                    RowSense::Ge => {
                        best_ge.is_some_and(|k| k != i && wrhs[k] >= wrhs[i])
                            || eq_row.is_some_and(|k| wrhs[k] >= wrhs[i])
                    }
                };
                if drop {
                    alive_row[i] = false;
                    removed.push(RemovedRow {
                        row: i,
                        sense: model.row_sense[i],
                        kind: RemovedKind::Dominated,
                    });
                }
            }
        }
    }

    // Power-of-two equilibration on the surviving submatrix.
    let mut row_scale = vec![1.0_f64; m];
    let mut col_scale = vec![1.0_f64; n];
    if opts.scale {
        for i in 0..m {
            if !alive_row[i] {
                continue;
            }
            let amax = wrows[i]
                .iter()
                .filter(|&&(j, _)| alive_col[j])
                .map(|&(_, a)| a.abs())
                .fold(0.0_f64, f64::max);
            if amax > 0.0 && amax.is_finite() {
                row_scale[i] = pow2_inverse(amax);
            }
        }
        for j in 0..n {
            if !alive_col[j] || is_int[j] || is_pair[j] {
                continue;
            }
            let amax = wcols[j]
                .iter()
                .filter(|&&(i, _)| alive_row[i])
                .map(|&(i, a)| (a * row_scale[i]).abs())
                .fold(0.0_f64, f64::max);
            if amax > 0.0 && amax.is_finite() {
                col_scale[j] = pow2_inverse(amax);
            }
        }
    }

    // Compaction: build the reduced model and the index maps.
    let mut col_map = vec![None; n];
    let mut next = 0usize;
    for j in 0..n {
        if alive_col[j] {
            col_map[j] = Some(next);
            next += 1;
        }
    }
    let cols_after = next;
    let mut row_map = vec![None; m];
    next = 0;
    for i in 0..m {
        if alive_row[i] {
            row_map[i] = Some(next);
            next += 1;
        }
    }
    let rows_after = next;

    // Objective: eliminated linear terms and quadratic cross terms fold
    // into the offset / linear coefficients.
    let mut obj_offset = 0.0_f64;
    let mut obj_adj = model.obj.clone();
    for (j, &v) in fixed_val.iter().enumerate() {
        if !alive_col[j] {
            obj_offset += model.obj[j] * v;
        }
    }
    let mut quad_red: Vec<(usize, usize, f64)> = Vec::new();
    for &(i, j, q) in &model.quad {
        match (col_map[i], col_map[j]) {
            (Some(_), Some(_)) => quad_red.push((i, j, q)), // remapped below
            (Some(_), None) => obj_adj[i] += 0.5 * q * fixed_val[j],
            (None, Some(_)) => obj_adj[j] += 0.5 * q * fixed_val[i],
            (None, None) => obj_offset += 0.5 * q * fixed_val[i] * fixed_val[j],
        }
    }

    let mut reduced = match model.sense {
        Sense::Min => Model::minimize(),
        Sense::Max => Model::maximize(),
    };
    for j in 0..n {
        if alive_col[j] {
            let s = col_scale[j];
            reduced.add_var(scale_div(wlb[j], s), scale_div(wub[j], s), obj_adj[j] * s);
        }
    }
    {
        let rcols = Arc::make_mut(&mut reduced.cols);
        for j in 0..n {
            let Some(rj) = col_map[j] else { continue };
            let s = col_scale[j];
            for &(i, a) in &wcols[j] {
                if let Some(ri) = row_map[i] {
                    rcols[rj].push((ri, a * row_scale[i] * s));
                }
            }
        }
        // add_row is bypassed, so install row metadata directly.
        for i in 0..m {
            if alive_row[i] {
                reduced.row_sense.push(model.row_sense[i]);
                reduced.rhs.push(wrhs[i] * row_scale[i]);
            }
        }
        // Column entries arrived row-major per column already sorted by
        // original row order; compaction preserves that order.
    }
    for &(i, j, q) in &quad_red {
        let (ri, rj) = (col_map[i].unwrap(), col_map[j].unwrap());
        reduced.quad.push((ri, rj, q * col_scale[i] * col_scale[j]));
    }
    for &v in &model.integers {
        if let Some(rj) = col_map[v.0] {
            reduced.integers.push(VarId(rj));
        }
    }
    for &(a, b) in &model.pairs {
        let (ra, rb) = (
            col_map[a.0].expect("pair columns are never eliminated"),
            col_map[b.0].expect("pair columns are never eliminated"),
        );
        reduced.pairs.push((VarId(ra), VarId(rb)));
    }

    let stats = PresolveStats {
        rows_before: m,
        cols_before: n,
        nnz_before: model.num_nonzeros(),
        rows_after,
        cols_after,
        nnz_after: reduced.num_nonzeros(),
    };
    let postsolve = Postsolve {
        sense: model.sense,
        n,
        m,
        col_map,
        row_map,
        fixed_val,
        col_scale,
        row_scale,
        obj_offset,
        tight_lb: wlb,
        tight_ub: wub,
        removed,
        orig_cols: Arc::clone(&model.cols),
        orig_obj: model.obj.clone(),
        feas_tol: opts.feas_tol,
    };
    Ok(Presolved { reduced, postsolve, stats })
}

/// `2^(−round(log2(x)))`, clamped to avoid overflow — the exact power-of-two
/// factor that brings `x` nearest to 1.
fn pow2_inverse(x: f64) -> f64 {
    let e = x.log2().round().clamp(-60.0, 60.0) as i32;
    (2.0_f64).powi(-e)
}

/// `x / s` where `s` is a power of two — exact, and preserves infinities.
fn scale_div(x: f64, s: f64) -> f64 {
    if x.is_finite() {
        x / s
    } else {
        x
    }
}

fn coalesce(entries: &mut Vec<(usize, f64)>) {
    let mut out: Vec<(usize, f64)> = Vec::with_capacity(entries.len());
    for &(i, a) in entries.iter() {
        match out.last_mut() {
            Some(&mut (last, ref mut v)) if last == i => *v += a,
            _ => out.push((i, a)),
        }
    }
    out.retain(|&(_, v)| v != 0.0);
    *entries = out;
}

impl Postsolve {
    /// Number of variables in the original model.
    pub fn num_original_vars(&self) -> usize {
        self.n
    }

    /// Number of rows in the original model.
    pub fn num_original_rows(&self) -> usize {
        self.m
    }

    /// Constant folded out of the objective by eliminations (original
    /// objective = reduced objective + offset).
    pub fn obj_offset(&self) -> f64 {
        self.obj_offset
    }

    /// Where an original variable went: `Some(reduced id)` if it survived,
    /// `None` if it was eliminated at a fixed value.
    pub fn map_var(&self, v: VarId) -> Option<VarId> {
        self.col_map[v.0].map(VarId)
    }

    /// Where an original row went, if it survived.
    pub fn map_row(&self, i: usize) -> Option<usize> {
        self.row_map[i]
    }

    /// Expands a reduced primal point to the original variable space:
    /// eliminated variables take their fixed values verbatim, survivors
    /// unscale by an exact power of two. `x_red` may be longer than the
    /// reduced model (e.g. when auxiliary variables were appended after
    /// presolve); the extras are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `x_red` is shorter than the reduced model.
    pub fn restore_x(&self, x_red: &[f64]) -> Vec<f64> {
        (0..self.n)
            .map(|j| match self.col_map[j] {
                Some(rj) => self.col_scale[j] * x_red[rj],
                None => self.fixed_val[j],
            })
            .collect()
    }

    /// Maps a reduced linear objective vector into reduced space, returning
    /// the reduced coefficients and the constant contributed by eliminated
    /// variables. This is what lets Algorithm 1 patch objectives on one
    /// presolved base model: `obj_orig'x_orig = obj_red'x_red + constant`.
    ///
    /// # Panics
    ///
    /// Panics if `obj.len()` differs from the original variable count.
    pub fn reduce_objective(&self, obj: &[f64]) -> (Vec<f64>, f64) {
        assert_eq!(obj.len(), self.n, "objective vector length mismatch");
        let reduced_n = self.col_map.iter().flatten().count();
        let mut red = vec![0.0; reduced_n];
        let mut offset = 0.0;
        for (j, &c) in obj.iter().enumerate() {
            match self.col_map[j] {
                Some(rj) => red[rj] = c * self.col_scale[j],
                None => offset += c * self.fixed_val[j],
            }
        }
        (red, offset)
    }

    /// Expands a reduced [`Partial`] (incumbent and bounds shifted by the
    /// objective offset, primal point restored).
    pub fn restore_partial(&self, p: Partial) -> Partial {
        Partial {
            tripped: p.tripped,
            x: p.x.map(|x| self.restore_x(&x)),
            objective: p.objective.map(|o| o + self.obj_offset),
            bound: p.bound.map(|b| b + self.obj_offset),
            iterations: p.iterations,
            nodes: p.nodes,
        }
    }

    /// Expands a reduced [`LpSolution`]: primal restored exactly, objective
    /// shifted by the eliminated constant, and duals/reduced costs of
    /// removed rows/columns recovered from stationarity by replaying the
    /// removals in reverse.
    pub fn restore_lp_solution(&self, sol: LpSolution) -> LpSolution {
        let x = self.restore_x(&sol.x);

        let mut duals = vec![0.0; self.m];
        for (i, d) in duals.iter_mut().enumerate() {
            if let Some(ri) = self.row_map[i] {
                *d = self.row_scale[i] * sol.duals[ri];
            }
        }
        // Reduced costs: survivors unscale; eliminated columns are
        // recomputed from stationarity once all duals are known.
        let mut rc = vec![f64::NAN; self.n];
        for (j, c) in rc.iter_mut().enumerate() {
            if let Some(rj) = self.col_map[j] {
                *c = sol.reduced_costs[rj] / self.col_scale[j];
            }
        }

        // Stationarity in the stated sense: rc_j = c_j − Σ_i y_i·a_ij
        // (holds for both Min and Max because this crate flips duals and
        // reduced costs together).
        let rc_from_duals = |j: usize, duals: &[f64]| -> f64 {
            let mut v = self.orig_obj[j];
            for &(i, a) in &self.orig_cols[j] {
                v -= duals[i] * a;
            }
            v
        };

        for r in self.removed.iter().rev() {
            let RemovedKind::Singleton { col: j, coef: a, implied } = r.kind else {
                continue; // empty/dominated rows keep dual 0
            };
            if rc[j].is_nan() {
                rc[j] = rc_from_duals(j, &duals);
            }
            match r.sense {
                RowSense::Eq => {
                    duals[r.row] = rc[j] / a;
                    rc[j] = 0.0;
                }
                RowSense::Le | RowSense::Ge => {
                    // Assign the dual only when this row's implied bound is
                    // the one actually binding at the restored point.
                    let tol = self.feas_tol * (1.0 + implied.abs());
                    let is_upper = match r.sense {
                        RowSense::Le => a > 0.0,
                        RowSense::Ge => a < 0.0,
                        RowSense::Eq => unreachable!(),
                    };
                    let final_bound = if is_upper { self.tight_ub[j] } else { self.tight_lb[j] };
                    let binding =
                        (implied - final_bound).abs() <= tol && (x[j] - implied).abs() <= tol;
                    if binding {
                        let y = rc[j] / a;
                        // Min form: Le duals ≤ 0, Ge duals ≥ 0; flipped for Max.
                        let sign_ok = match (self.sense, r.sense) {
                            (Sense::Min, RowSense::Le) | (Sense::Max, RowSense::Ge) => {
                                y <= self.feas_tol
                            }
                            (Sense::Min, RowSense::Ge) | (Sense::Max, RowSense::Le) => {
                                y >= -self.feas_tol
                            }
                            (_, RowSense::Eq) => unreachable!(),
                        };
                        if sign_ok {
                            duals[r.row] = y;
                            rc[j] = 0.0;
                        }
                    }
                }
            }
        }
        for (j, c) in rc.iter_mut().enumerate() {
            if c.is_nan() {
                *c = rc_from_duals(j, &duals);
            }
        }

        LpSolution {
            status: sol.status,
            objective: sol.objective + self.obj_offset,
            x,
            duals,
            reduced_costs: rc,
            iterations: sol.iterations,
            // A basis recorded in the reduced space does not transfer to the
            // full space, so postsolved solutions carry none.
            basis: None,
            warm_used: sol.warm_used,
            dual_iterations: sol.dual_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::Row;

    #[test]
    fn reference_row_is_eliminated() {
        // θ-style model: singleton equality fixes t, eliminating its column
        // from the balance row.
        let mut m = Model::minimize();
        let p = m.add_var(0.0, 10.0, 1.0);
        let t = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        m.add_row(Row::eq(0.0).coef(t, 1.0));
        m.add_row(Row::eq(5.0).coef(p, 1.0).coef(t, 2.0));
        let pre = presolve(&m).unwrap();
        // The fixing cascades: t = 0 eliminates its column, which makes the
        // balance row a singleton that fixes p too — everything reduces away.
        assert_eq!(pre.stats.rows_removed(), 2);
        assert_eq!(pre.stats.cols_removed(), 2);
        assert!(pre.stats.reduction_ratio() > 0.0);
        assert_eq!(pre.postsolve.map_var(t), None);
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve.restore_lp_solution(sol);
        assert_eq!(full.x.len(), 2);
        assert!((full.x[0] - 5.0).abs() < 1e-9);
        assert_eq!(full.x[1], 0.0);
        assert!((full.objective - 5.0).abs() < 1e-9);
        // Balance-row dual survives; reference-row dual recovered.
        assert!((full.duals[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn singleton_inequality_tightens_and_recovers_dual() {
        // min -x  s.t.  2x <= 8, x in [0, 10]  →  x = 4 with the row binding.
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 10.0, -1.0);
        m.add_row(Row::le(8.0).coef(x, 2.0));
        let pre = presolve(&m).unwrap();
        assert_eq!(pre.reduced.num_rows(), 0);
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve.restore_lp_solution(sol);
        assert!((full.x[0] - 4.0).abs() < 1e-9);
        assert!((full.objective + 4.0).abs() < 1e-9);
        // Min-form Le dual: y = rc/a = (−1 − 0)/2 = −0.5, and the variable's
        // reduced cost moves onto the recovered row.
        assert!((full.duals[0] + 0.5).abs() < 1e-9);
        assert!(full.reduced_costs[0].abs() < 1e-9);
    }

    #[test]
    fn infeasible_fixings_detected() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_row(Row::eq(5.0).coef(x, 1.0));
        assert!(matches!(presolve(&m), Err(OptimError::Infeasible)));

        let mut m = Model::minimize();
        let x = m.add_var(0.0, 10.0, 1.0);
        m.add_row(Row::le(2.0).coef(x, 1.0));
        m.add_row(Row::ge(3.0).coef(x, 1.0));
        assert!(matches!(presolve(&m), Err(OptimError::Infeasible)));
    }

    #[test]
    fn dominated_duplicates_drop() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 10.0, 1.0);
        let y = m.add_var(0.0, 10.0, 1.0);
        m.add_row(Row::le(5.0).coef(x, 1.0).coef(y, 1.0));
        m.add_row(Row::le(7.0).coef(x, 1.0).coef(y, 1.0)); // dominated
        m.add_row(Row::ge(1.0).coef(x, 1.0).coef(y, 1.0));
        let pre = presolve(&m).unwrap();
        assert_eq!(pre.stats.rows_removed(), 1);
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve.restore_lp_solution(sol);
        assert!((full.objective - 1.0).abs() < 1e-9);
        assert_eq!(full.duals.len(), 3);
        assert_eq!(full.duals[1], 0.0, "dominated row keeps zero dual");
    }

    #[test]
    fn scaling_round_trips_exactly() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 1024.0, 3.0);
        let y = m.add_var(0.0, 1024.0, 1.0);
        m.add_row(Row::ge(512.0).coef(x, 256.0).coef(y, 256.0));
        m.add_row(Row::le(0.125).coef(x, 0.0625).coef(y, -0.0625));
        let pre = presolve_with(&m, &PresolveOptions::default()).unwrap();
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve.restore_lp_solution(sol);
        // Optimum: y as large as possible... solve the original directly and
        // compare exactly (power-of-two scaling must not perturb the vertex).
        let direct = m.solve().unwrap();
        assert_eq!(full.x, direct.x);
        assert!((full.objective - direct.objective).abs() < 1e-12);
    }

    #[test]
    fn pair_columns_survive() {
        let mut m = Model::minimize();
        let l = m.add_var(0.0, 10.0, 1.0);
        let s = m.add_var(0.0, 10.0, 1.0);
        m.add_pair(l, s);
        // Singleton equality would normally eliminate l.
        m.add_row(Row::eq(0.0).coef(l, 1.0));
        m.add_row(Row::ge(1.0).coef(s, 1.0).coef(l, 1.0));
        let pre = presolve(&m).unwrap();
        assert!(pre.postsolve.map_var(l).is_some(), "pair column must survive");
        assert!(pre.postsolve.map_var(s).is_some());
        assert_eq!(pre.reduced.pairs().len(), 1);
    }

    #[test]
    fn reduce_objective_maps_and_offsets() {
        let mut m = Model::maximize();
        let a = m.add_var(0.0, 10.0, 0.0);
        let t = m.add_var(3.0, 3.0, 0.0); // fixed → eliminated
        m.add_row(Row::le(8.0).coef(a, 1.0).coef(t, 1.0));
        let pre = presolve(&m).unwrap();
        let (red, off) = pre.postsolve.reduce_objective(&[2.0, 5.0]);
        assert_eq!(red.len(), pre.reduced.num_vars());
        assert!((off - 15.0).abs() < 1e-12);
        let ra = pre.postsolve.map_var(a).unwrap();
        assert_eq!(red[ra.index()], 2.0);
    }
}
