//! Linear programs with complementarity constraints (LPCC / "MPEC"),
//! solved by branching on complementarity pairs.
//!
//! This is the scalable alternative to the big-M MILP reformulation of the
//! bilevel attack problem. Instead of one binary indicator per KKT
//! complementary-slackness condition (which requires a large, numerically
//! delicate big-M constant), we branch *directly* on each violated pair:
//! either the multiplier is zero or the constraint slack is zero. Relaxations
//! stay tight and no big-M enters the model.
//!
//! A problem is a [`Model`] whose complementarity pairs `(a, b)` of
//! nonnegative variables (recorded via [`Model::add_pair`]) must satisfy
//! `x_a * x_b = 0`. Like the MILP front end, [`MpecProblem`] holds nothing
//! but the model. The root model is presolved once when enabled (via
//! [`MpecOptions::presolve`] or `ED_PRESOLVE`) — presolve never eliminates
//! pair columns, so branching happens on the mapped pair variables of the
//! reduced model and the final point is mapped back exactly.
//!
//! # Example
//!
//! ```
//! use ed_optim::lp::{LpProblem, Row};
//! use ed_optim::mpec::MpecProblem;
//!
//! # fn main() -> Result<(), ed_optim::OptimError> {
//! // max x + y with x + y <= 3, 0 <= x,y <= 2, and x ⟂ y.
//! let mut lp = LpProblem::maximize();
//! let x = lp.add_var(0.0, 2.0, 1.0);
//! let y = lp.add_var(0.0, 2.0, 1.0);
//! lp.add_row(Row::le(3.0).coef(x, 1.0).coef(y, 1.0));
//! let mpec = MpecProblem::new(lp, vec![(x, y)]);
//! let sol = mpec.solve()?;
//! assert!((sol.objective - 2.0).abs() < 1e-7); // one of them pinned to 0
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::budget::{BudgetTripped, Partial, SolveBudget, SolveOutcome};
use crate::lp::simplex;
use crate::lp::{Basis, LpProblem, Sense, SimplexOptions, VarId};
use crate::model::presolve::{self, Postsolve};
use crate::model::Model;
use crate::OptimError;

/// Options for the complementarity branch-and-bound solver.
#[derive(Debug, Clone)]
pub struct MpecOptions {
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// A pair is considered satisfied when `x_a * x_b <= comp_tol`
    /// (after scaling by the larger of the two values and 1).
    pub comp_tol: f64,
    /// Absolute objective gap at which search stops.
    pub gap_abs: f64,
    /// Simplex options for node relaxations.
    pub simplex: SimplexOptions,
    /// Optional known feasible objective (problem sense) used for pruning.
    pub incumbent_hint: Option<f64>,
    /// Presolve the root model before branching: `Some(flag)` forces it,
    /// `None` defers to the `ED_PRESOLVE` environment variable.
    pub presolve: Option<bool>,
    /// Hand each child node its parent's optimal basis as a warm start
    /// (dual-feasible after a bound-only change, repaired by the dual
    /// simplex). The root itself warm-starts from `simplex.warm` when set.
    /// Disabling this never changes answers — only iteration counts.
    pub warm: bool,
}

impl Default for MpecOptions {
    fn default() -> Self {
        let tol = crate::certify::Tolerances::default();
        MpecOptions {
            max_nodes: 20_000,
            comp_tol: tol.feas,
            // Complementarity incumbents land on LP vertices, so the gap
            // closes to simplex precision: two orders above `opt`.
            gap_abs: 100.0 * tol.opt,
            simplex: SimplexOptions::default(),
            incumbent_hint: None,
            presolve: None,
            warm: true,
        }
    }
}

/// Solution of an MPEC solve.
#[derive(Debug, Clone)]
pub struct MpecSolution {
    /// Best complementarity-feasible point found.
    pub x: Vec<f64>,
    /// Objective at `x` (problem sense).
    pub objective: f64,
    /// `true` if the tree was exhausted (global optimum proved).
    pub proved_optimal: bool,
    /// Best relaxation bound at termination.
    pub best_bound: f64,
    /// Nodes explored.
    pub nodes: usize,
    /// Total simplex iterations.
    pub lp_iterations: usize,
    /// Node relaxations that accepted their parent's basis as a warm start.
    pub warm_starts: usize,
    /// Node relaxations that were offered a warm basis but fell back to a
    /// cold two-phase solve.
    pub cold_restarts: usize,
    /// Optimal basis of the incumbent's relaxation, for hand-off to sibling
    /// solves; `None` when presolve was active (reduced-space bases do not
    /// transfer) or no incumbent basis survived.
    pub basis: Option<Basis>,
}

impl MpecSolution {
    /// Absolute optimality gap.
    pub fn gap(&self) -> f64 {
        (self.objective - self.best_bound).abs()
    }
}

/// An LP with complementarity constraints between pairs of nonnegative
/// variables, all stored on the backing [`Model`].
#[derive(Debug, Clone)]
pub struct MpecProblem {
    model: Model,
}

fn to_internal(sense: Sense, obj: f64) -> f64 {
    match sense {
        Sense::Min => obj,
        Sense::Max => -obj,
    }
}

/// Maximum scaled complementarity violation of a point over `pairs`.
fn violation(pairs: &[(VarId, VarId)], x: &[f64], tol_scale: f64) -> Option<(usize, f64)> {
    let mut worst: Option<(usize, f64)> = None;
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let va = x[a.index()].max(0.0);
        let vb = x[b.index()].max(0.0);
        let prod = va * vb / va.max(vb).max(tol_scale);
        if prod > worst.map_or(0.0, |(_, w)| w) {
            worst = Some((i, prod));
        }
    }
    worst
}

impl MpecProblem {
    /// Wraps an LP with complementarity pairs `x_a * x_b = 0` (recorded on
    /// the model itself).
    ///
    /// Both variables of each pair are expected to have lower bound `>= 0`.
    pub fn new(mut lp: LpProblem, pairs: Vec<(VarId, VarId)>) -> MpecProblem {
        for (a, b) in pairs {
            lp.add_pair(a, b);
        }
        MpecProblem { model: lp }
    }

    /// Wraps a model that already carries its complementarity pairs.
    pub fn from_model(model: Model) -> MpecProblem {
        MpecProblem { model }
    }

    /// The underlying LP relaxation.
    pub fn lp(&self) -> &LpProblem {
        &self.model
    }

    /// Mutable access to the underlying LP.
    pub fn lp_mut(&mut self) -> &mut LpProblem {
        &mut self.model
    }

    /// The complementarity pairs.
    pub fn pairs(&self) -> &[(VarId, VarId)] {
        self.model.pairs()
    }

    /// Solves with default options.
    ///
    /// # Errors
    ///
    /// - [`OptimError::Infeasible`] if no complementarity-feasible point
    ///   exists.
    /// - [`OptimError::Unbounded`] if a relaxation is unbounded.
    /// - [`OptimError::NodeLimit`] if the node budget is exhausted before any
    ///   feasible point was found.
    pub fn solve(&self) -> Result<MpecSolution, OptimError> {
        self.solve_with(&MpecOptions::default())
    }

    /// Solves with explicit options.
    ///
    /// # Errors
    ///
    /// Same as [`MpecProblem::solve`].
    pub fn solve_with(&self, options: &MpecOptions) -> Result<MpecSolution, OptimError> {
        match self.solve_budgeted(options, &SolveBudget::unlimited())? {
            SolveOutcome::Solved(sol) => Ok(sol),
            SolveOutcome::Partial(_) => unreachable!("an unlimited budget cannot trip"),
        }
    }

    /// Solves under a cooperative [`SolveBudget`]. A node-cap or deadline
    /// trip returns [`SolveOutcome::Partial`] with the best
    /// complementarity-feasible incumbent (if any) and the frontier bound;
    /// the deadline is also threaded into each node relaxation so one slow
    /// LP cannot overshoot it.
    ///
    /// # Errors
    ///
    /// Same as [`MpecProblem::solve`], minus the limit cases the budget
    /// converts into partial outcomes.
    pub fn solve_budgeted(
        &self,
        options: &MpecOptions,
        budget: &SolveBudget,
    ) -> Result<SolveOutcome<MpecSolution>, OptimError> {
        let _t = ed_obs::timer("optim.bb");
        let mut pruned = 0usize;
        let out = self.solve_budgeted_inner(options, budget, &mut pruned);
        if ed_obs::enabled() {
            let nodes = match &out {
                Ok(SolveOutcome::Solved(s)) => s.nodes,
                Ok(SolveOutcome::Partial(p)) => p.nodes,
                // The node budget was spent in full before the limit fired.
                Err(OptimError::NodeLimit { limit, .. }) => *limit,
                Err(_) => 0,
            };
            ed_obs::counter("optim.bb.solves", 1);
            ed_obs::counter("optim.bb.nodes", nodes as u64);
            ed_obs::counter("optim.bb.pruned", pruned as u64);
        }
        out
    }

    fn solve_budgeted_inner(
        &self,
        options: &MpecOptions,
        budget: &SolveBudget,
        pruned: &mut usize,
    ) -> Result<SolveOutcome<MpecSolution>, OptimError> {
        // Model-level validation covers the complementarity-variable bound
        // requirement (each pair variable must admit 0).
        self.model.validate()?;
        let sense = self.model.sense();

        // Root presolve (once). Pair columns survive presolve by contract.
        let use_presolve = options.presolve.unwrap_or_else(presolve::env_enabled);
        let (mut lp, post): (Model, Option<Postsolve>) = if use_presolve {
            let pre = presolve::presolve(&self.model)?;
            (pre.reduced, Some(pre.postsolve))
        } else {
            (self.model.clone(), None)
        };
        let offset = post.as_ref().map_or(0.0, Postsolve::obj_offset);
        let restore = |x: &[f64]| post.as_ref().map_or_else(|| x.to_vec(), |p| p.restore_x(x));
        let pairs: Vec<(VarId, VarId)> = lp.pairs().to_vec();

        struct Node {
            /// Variables forced to zero (their ub is set to 0).
            fixed: Vec<VarId>,
            bound: f64,
            /// Parent relaxation's optimal basis (dual-feasible after the
            /// bound-only fix), shared between siblings.
            basis: Option<Arc<Basis>>,
        }

        let mut incumbent: Option<(Vec<f64>, f64)> = None; // (reduced x, internal obj)
        let mut incumbent_cut = options
            .incumbent_hint
            .map(|h| to_internal(sense, h - offset))
            .unwrap_or(f64::INFINITY);
        let mut nodes = 0usize;
        let mut lp_iterations = 0usize;
        let mut warm_starts = 0usize;
        let mut cold_restarts = 0usize;
        let mut incumbent_basis: Option<Basis> = None;
        let mut tripped: Option<BudgetTripped> = None;
        // Per-node simplex options: only the warm slot changes node to node.
        let mut node_simplex = options.simplex.clone();
        let root_basis = node_simplex.warm.take().map(Arc::new);
        let mut stack =
            vec![Node { fixed: Vec::new(), bound: f64::NEG_INFINITY, basis: root_basis }];

        while let Some(node) = stack.pop() {
            if node.bound >= incumbent_cut - options.gap_abs {
                *pruned += 1;
                continue;
            }
            if !budget.is_unlimited() {
                if let Some(t) = budget.node_tripped(nodes) {
                    stack.push(node);
                    tripped = Some(t);
                    break;
                }
            }
            if nodes >= options.max_nodes {
                stack.push(node);
                break;
            }
            nodes += 1;

            // A branch fixes variables to zero, which is only consistent
            // with bounds that admit zero. The original model guarantees
            // that for every pair variable (validated above), but presolve
            // may tighten a lower bound above zero (a singleton row like
            // `x >= 1` becomes the bound x ∈ [1, u]); overwriting such a
            // bound with [0, 0] would silently drop that constraint, so
            // the branch is infeasible instead.
            if node.fixed.iter().any(|&v| lp.bounds(v).0 > options.comp_tol) {
                *pruned += 1;
                continue;
            }

            let saved: Vec<(VarId, f64, f64)> = node
                .fixed
                .iter()
                .map(|&v| {
                    let (l, u) = lp.bounds(v);
                    (v, l, u)
                })
                .collect();
            for &v in &node.fixed {
                lp.set_bounds(v, 0.0, 0.0);
            }
            node_simplex.warm = if options.warm {
                node.basis.as_deref().cloned()
            } else {
                None
            };
            let warm_offered = node_simplex.warm.is_some();
            let result = simplex::solve_budgeted(&lp, &node_simplex, &budget.wall_only());
            for &(v, l, u) in &saved {
                lp.set_bounds(v, l, u);
            }

            let sol = match result {
                Ok(SolveOutcome::Solved(s)) => s,
                Ok(SolveOutcome::Partial(p)) => {
                    // The node relaxation hit the shared deadline: return the
                    // node to the frontier and stop the sweep.
                    lp_iterations += p.iterations;
                    stack.push(node);
                    tripped = Some(p.tripped);
                    break;
                }
                Err(OptimError::Infeasible) => {
                    *pruned += 1;
                    continue;
                }
                Err(OptimError::Unbounded) => return Err(OptimError::Unbounded),
                Err(e) => return Err(e),
            };
            lp_iterations += sol.iterations;
            if warm_offered {
                if sol.warm_used {
                    warm_starts += 1;
                } else {
                    cold_restarts += 1;
                }
            }
            let node_obj = to_internal(sense, sol.objective);
            if node_obj >= incumbent_cut - options.gap_abs {
                *pruned += 1;
                continue;
            }

            let child_basis = sol.basis.map(Arc::new);
            match violation(&pairs, &sol.x, 1.0) {
                Some((pair, viol)) if viol > options.comp_tol => {
                    let (a, b) = pairs[pair];
                    // Branch: fix the smaller-valued side to zero first
                    // (pushed last so it pops first).
                    let mut fix_a = node.fixed.clone();
                    fix_a.push(a);
                    let mut fix_b = node.fixed.clone();
                    fix_b.push(b);
                    let mk = |fixed: Vec<VarId>| Node {
                        fixed,
                        bound: node_obj,
                        basis: child_basis.clone(),
                    };
                    if sol.x[a.index()] <= sol.x[b.index()] {
                        stack.push(mk(fix_b));
                        stack.push(mk(fix_a));
                    } else {
                        stack.push(mk(fix_a));
                        stack.push(mk(fix_b));
                    }
                }
                _ => {
                    incumbent_cut = node_obj;
                    incumbent = Some((sol.x, node_obj));
                    incumbent_basis = child_basis.as_deref().cloned();
                }
            }
        }

        let frontier_bound = stack
            .iter()
            .map(|n| n.bound)
            .fold(f64::INFINITY, f64::min)
            .min(incumbent_cut);

        if let Some(t) = tripped {
            return Ok(SolveOutcome::Partial(Partial {
                tripped: t,
                x: incumbent.as_ref().map(|(x, _)| restore(x)),
                objective: incumbent.as_ref().map(|&(_, o)| to_internal(sense, o) + offset),
                bound: Some(to_internal(sense, frontier_bound) + offset),
                iterations: lp_iterations,
                nodes,
            }));
        }

        match incumbent {
            Some((x, internal_obj)) => {
                let proved =
                    stack.is_empty() || frontier_bound >= incumbent_cut - options.gap_abs;
                Ok(SolveOutcome::Solved(MpecSolution {
                    objective: to_internal(sense, internal_obj) + offset,
                    best_bound: to_internal(
                        sense,
                        if proved { internal_obj } else { frontier_bound },
                    ) + offset,
                    x: restore(&x),
                    proved_optimal: proved,
                    nodes,
                    lp_iterations,
                    warm_starts,
                    cold_restarts,
                    // Reduced-space bases do not transfer through postsolve.
                    basis: if use_presolve { None } else { incumbent_basis },
                }))
            }
            None => {
                if stack.is_empty() {
                    Err(OptimError::Infeasible)
                } else {
                    Err(OptimError::NodeLimit {
                        limit: options.max_nodes,
                        incumbent: None,
                        bound: to_internal(sense, frontier_bound) + offset,
                        lp_iterations,
                        warm_starts,
                        cold_restarts,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::{LpProblem, Row};

    #[test]
    fn simple_complementarity() {
        // max x + y, x + y <= 3, x,y in [0,2], x ⟂ y -> max single var = 2.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, 2.0, 1.0);
        let y = lp.add_var(0.0, 2.0, 1.0);
        lp.add_row(Row::le(3.0).coef(x, 1.0).coef(y, 1.0));
        let sol = MpecProblem::new(lp, vec![(x, y)]).solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-7);
        assert!(sol.proved_optimal);
        let prod = sol.x[0] * sol.x[1];
        assert!(prod.abs() < 1e-6, "complementarity violated: {prod}");
    }

    #[test]
    fn already_complementary_at_relaxation() {
        // max x with x <= 1, pair (x, y) where y is cost-free and settles at 0.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, 1.0, 1.0);
        let y = lp.add_var(0.0, 1.0, 0.0);
        let sol = MpecProblem::new(lp, vec![(x, y)]).solve().unwrap();
        assert_eq!(sol.nodes, 1);
        assert!((sol.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_when_both_forced_positive() {
        // x >= 1 and y >= 1 but x ⟂ y -> infeasible.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 2.0, 0.0);
        let y = lp.add_var(0.0, 2.0, 0.0);
        lp.add_row(Row::ge(1.0).coef(x, 1.0));
        lp.add_row(Row::ge(1.0).coef(y, 1.0));
        let res = MpecProblem::new(lp, vec![(x, y)]).solve();
        assert!(matches!(res, Err(OptimError::Infeasible)), "{res:?}");
    }

    #[test]
    fn presolve_bound_tightening_keeps_branching_sound() {
        // Presolve turns the singleton rows into tightened lower bounds;
        // the branch that fixes such a variable to zero must be treated as
        // infeasible, not allowed to overwrite the bound with [0, 0].
        // Both sides forced positive -> infeasible even after presolve.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 2.0, 0.0);
        let y = lp.add_var(0.0, 2.0, 0.0);
        lp.add_row(Row::ge(1.0).coef(x, 1.0));
        lp.add_row(Row::ge(1.0).coef(y, 1.0));
        let opts = MpecOptions { presolve: Some(true), ..Default::default() };
        let res = MpecProblem::new(lp, vec![(x, y)]).solve_with(&opts);
        assert!(matches!(res, Err(OptimError::Infeasible)), "{res:?}");

        // One side forced positive -> the other side of the pair settles
        // at zero; the problem stays feasible and optimal.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, 2.0, 1.0);
        let y = lp.add_var(0.0, 2.0, 1.0);
        lp.add_row(Row::ge(1.0).coef(x, 1.0));
        let sol = MpecProblem::new(lp, vec![(x, y)]).solve_with(&opts).unwrap();
        assert!(sol.proved_optimal);
        assert!((sol.objective - 2.0).abs() < 1e-9, "obj {}", sol.objective);
        assert!(sol.x[1].abs() < 1e-9, "y must be zero: {:?}", sol.x);
    }

    #[test]
    fn chain_of_pairs() {
        // max x1 + x2 + x3, x1 ⟂ x2, x2 ⟂ x3, all in [0,1]:
        // optimum picks x1 = x3 = 1, x2 = 0 -> 2.
        let mut lp = LpProblem::maximize();
        let x1 = lp.add_var(0.0, 1.0, 1.0);
        let x2 = lp.add_var(0.0, 1.0, 1.0);
        let x3 = lp.add_var(0.0, 1.0, 1.0);
        let sol = MpecProblem::new(lp, vec![(x1, x2), (x2, x3)]).solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-7, "obj={}", sol.objective);
        assert!(sol.x[1].abs() < 1e-7);
    }

    #[test]
    fn incumbent_hint_does_not_cut_optimum() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, 2.0, 1.0);
        let y = lp.add_var(0.0, 2.0, 1.0);
        lp.add_row(Row::le(3.0).coef(x, 1.0).coef(y, 1.0));
        let mpec = MpecProblem::new(lp, vec![(x, y)]);
        let opts = MpecOptions { incumbent_hint: Some(1.5), ..Default::default() };
        let sol = mpec.solve_with(&opts).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn presolve_keeps_pairs_and_optimum() {
        // Add a fixed variable and a redundant row so presolve has work to
        // do; the pair itself must survive and the optimum must match.
        let build = || {
            let mut lp = LpProblem::maximize();
            let x = lp.add_var(0.0, 2.0, 1.0);
            let y = lp.add_var(0.0, 2.0, 1.0);
            let fixed = lp.add_var(1.0, 1.0, 3.0);
            lp.add_row(Row::le(3.0).coef(x, 1.0).coef(y, 1.0));
            lp.add_row(Row::le(6.0).coef(x, 2.0).coef(y, 2.0)); // dominated duplicate
            lp.add_row(Row::le(5.0).coef(fixed, 1.0)); // singleton on the fixed var
            MpecProblem::new(lp, vec![(x, y)])
        };
        let plain = build()
            .solve_with(&MpecOptions { presolve: Some(false), ..Default::default() })
            .unwrap();
        let pre = build()
            .solve_with(&MpecOptions { presolve: Some(true), ..Default::default() })
            .unwrap();
        assert!((plain.objective - 5.0).abs() < 1e-7, "obj={}", plain.objective);
        assert!((pre.objective - plain.objective).abs() < 1e-9);
        for (p, q) in pre.x.iter().zip(&plain.x) {
            assert!((p - q).abs() < 1e-7, "{:?} vs {:?}", pre.x, plain.x);
        }
    }
}
