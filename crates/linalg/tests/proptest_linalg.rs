//! Property-based tests for the dense linear-algebra kernels.

use ed_linalg::{Lu, Matrix};
use proptest::prelude::*;

/// Strategy: a diagonally-dominated (hence nonsingular, well-conditioned)
/// n x n matrix with entries in [-1, 1].
fn dominated_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).expect("sized correctly");
        for i in 0..n {
            let boost = n as f64 + 1.0;
            let d = m[(i, i)];
            m[(i, i)] = d + boost * d.signum().max(0.5);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU solve leaves a tiny residual: ||Ax - b||_inf small.
    #[test]
    fn lu_solve_residual((a, b) in dominated_matrix(8).prop_flat_map(|a| {
        (Just(a), proptest::collection::vec(-10.0f64..10.0, 8))
    })) {
        let lu = Lu::factor(&a).expect("dominated matrices are nonsingular");
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8, "residual too large: {l} vs {r}");
        }
    }

    /// Transpose solve agrees with solving the explicitly transposed matrix.
    #[test]
    fn transpose_solve_consistent((a, b) in dominated_matrix(6).prop_flat_map(|a| {
        (Just(a), proptest::collection::vec(-5.0f64..5.0, 6))
    })) {
        let lu = Lu::factor(&a).unwrap();
        let x1 = lu.solve_transpose(&b).unwrap();
        let lu_t = Lu::factor(&a.transpose()).unwrap();
        let x2 = lu_t.solve(&b).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-7);
        }
    }

    /// det(A) * det(A^{-1}) == 1.
    #[test]
    fn determinant_inverse_product(a in dominated_matrix(5)) {
        let lu = Lu::factor(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let lu_inv = Lu::factor(&inv).unwrap();
        let prod = lu.det() * lu_inv.det();
        prop_assert!((prod - 1.0).abs() < 1e-6, "det product {prod}");
    }

    /// (AB)^T == B^T A^T.
    #[test]
    fn transpose_of_product((a, b) in (dominated_matrix(5), dominated_matrix(5))) {
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        let diff = &ab_t - &bt_at;
        prop_assert!(diff.norm_inf() < 1e-9);
    }

    /// Matrix-vector and matrix-matrix products agree on single columns.
    #[test]
    fn matvec_matches_matmul((a, v) in dominated_matrix(6).prop_flat_map(|a| {
        (Just(a), proptest::collection::vec(-3.0f64..3.0, 6))
    })) {
        let col = Matrix::from_vec(6, 1, v.clone()).unwrap();
        let via_mm = a.matmul(&col).unwrap();
        let via_mv = a.matvec(&v).unwrap();
        for i in 0..6 {
            prop_assert!((via_mm[(i, 0)] - via_mv[i]).abs() < 1e-12);
        }
    }
}
