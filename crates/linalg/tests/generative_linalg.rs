//! Generative tests for the dense linear-algebra kernels.
//!
//! Formerly proptest-based; rewritten as seeded loops over [`ed_rng`] so the
//! workspace builds offline. Each test draws many random instances from a
//! fixed seed, so failures are exactly reproducible.

use ed_linalg::{Lu, Matrix};
use ed_rng::{Rng, SeedableRng, StdRng};

/// A diagonally-dominated (hence nonsingular, well-conditioned) n x n
/// matrix with off-diagonal entries in [-1, 1].
fn dominated_matrix(n: usize, rng: &mut StdRng) -> Matrix {
    let data: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut m = Matrix::from_vec(n, n, data).expect("sized correctly");
    for i in 0..n {
        let boost = n as f64 + 1.0;
        let d = m[(i, i)];
        m[(i, i)] = d + boost * d.signum().max(0.5);
    }
    m
}

fn vector(n: usize, lo: f64, hi: f64, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// LU solve leaves a tiny residual: ||Ax - b||_inf small.
#[test]
fn lu_solve_residual() {
    let mut rng = StdRng::seed_from_u64(0x11A1);
    for _ in 0..64 {
        let a = dominated_matrix(8, &mut rng);
        let b = vector(8, -10.0, 10.0, &mut rng);
        let lu = Lu::factor(&a).expect("dominated matrices are nonsingular");
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-8, "residual too large: {l} vs {r}");
        }
    }
}

/// Transpose solve agrees with solving the explicitly transposed matrix.
#[test]
fn transpose_solve_consistent() {
    let mut rng = StdRng::seed_from_u64(0x11A2);
    for _ in 0..64 {
        let a = dominated_matrix(6, &mut rng);
        let b = vector(6, -5.0, 5.0, &mut rng);
        let lu = Lu::factor(&a).unwrap();
        let x1 = lu.solve_transpose(&b).unwrap();
        let lu_t = Lu::factor(&a.transpose()).unwrap();
        let x2 = lu_t.solve(&b).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-7);
        }
    }
}

/// det(A) * det(A^{-1}) == 1.
#[test]
fn determinant_inverse_product() {
    let mut rng = StdRng::seed_from_u64(0x11A3);
    for _ in 0..64 {
        let a = dominated_matrix(5, &mut rng);
        let lu = Lu::factor(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let lu_inv = Lu::factor(&inv).unwrap();
        let prod = lu.det() * lu_inv.det();
        assert!((prod - 1.0).abs() < 1e-6, "det product {prod}");
    }
}

/// (AB)^T == B^T A^T.
#[test]
fn transpose_of_product() {
    let mut rng = StdRng::seed_from_u64(0x11A4);
    for _ in 0..64 {
        let a = dominated_matrix(5, &mut rng);
        let b = dominated_matrix(5, &mut rng);
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        let diff = &ab_t - &bt_at;
        assert!(diff.norm_inf() < 1e-9);
    }
}

/// Matrix-vector and matrix-matrix products agree on single columns.
#[test]
fn matvec_matches_matmul() {
    let mut rng = StdRng::seed_from_u64(0x11A5);
    for _ in 0..64 {
        let a = dominated_matrix(6, &mut rng);
        let v = vector(6, -3.0, 3.0, &mut rng);
        let col = Matrix::from_vec(6, 1, v.clone()).unwrap();
        let via_mm = a.matmul(&col).unwrap();
        let via_mv = a.matvec(&v).unwrap();
        for i in 0..6 {
            assert!((via_mm[(i, 0)] - via_mv[i]).abs() < 1e-12);
        }
    }
}
