//! Row-major dense `f64` matrix.

use crate::LinalgError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse container for admittance matrices, PTDF tables,
/// Newton Jacobians, and simplex bases in this workspace. It favors clarity
/// and predictable performance over cleverness: storage is a single `Vec`,
/// and all operations are straightforward dense loops.
///
/// # Example
///
/// ```
/// use ed_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} elements for {}x{}", rows * cols, rows, cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates an `n x n` diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The underlying row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", x.len()),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix–vector product `A^T x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.rows),
                found: format!("length {}", x.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                crate::axpy(xi, self.row(i), &mut out);
            }
        }
        Ok(out)
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik != 0.0 {
                    let brow = other.row(k);
                    let orow = out.row_mut(i);
                    crate::axpy(aik, brow, orow);
                }
            }
        }
        Ok(out)
    }

    /// Largest absolute entry; `0.0` for an empty matrix.
    pub fn norm_inf(&self) -> f64 {
        crate::norm_inf(&self.data)
    }

    /// Swaps rows `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "swap_rows: index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Returns a sub-matrix given row and column index lists (gather).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (oi, &i) in row_idx.iter().enumerate() {
            for (oj, &j) in col_idx.iter().enumerate() {
                out[(oi, oj)] = self[(i, j)];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix add: shape mismatch"
        );
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix sub: shape mismatch"
        );
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * rhs).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(i3.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.matvec_t(&x).unwrap(), a.transpose().matvec(&x).unwrap());
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        a.swap_rows(0, 2);
        assert_eq!(a.row(0), &[5.0, 6.0]);
        assert_eq!(a.row(2), &[1.0, 2.0]);
        a.swap_rows(1, 1);
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn diag_and_submatrix() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        let s = d.submatrix(&[1, 2], &[1, 2]);
        assert_eq!(s, Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]));
    }

    #[test]
    fn add_sub_scalar_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn norm_inf_of_matrix() {
        let a = Matrix::from_rows(&[&[1.0, -9.0], &[3.0, 4.0]]);
        assert_eq!(a.norm_inf(), 9.0);
    }
}
