//! Free functions on `&[f64]` slices used throughout the workspace.
//!
//! These are deliberately plain-slice helpers rather than a wrapper type:
//! callers in the optimization and power-flow crates keep their own `Vec`s
//! and only need the arithmetic.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Infinity norm (max absolute entry); `0.0` for an empty slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Euclidean norm.
pub fn norm_two(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_basic() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn sub_basic() {
        assert_eq!(sub(&[5.0, 1.0], &[2.0, 3.0]), vec![3.0, -2.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert!((norm_two(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }
}
