//! Error type for linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Errors produced by dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// The matrix is singular (or numerically singular) to working precision.
    Singular {
        /// Pivot column at which factorization broke down.
        column: usize,
    },
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was found.
        found: String,
    },
    /// The operation requires a square matrix but the operand is rectangular.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
            LinalgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, found {rows}x{cols}")
            }
        }
    }
}

impl Error for LinalgError {}
