//! LU factorization with partial pivoting.

use crate::{LinalgError, Matrix};

/// An LU factorization `P A = L U` of a square matrix with partial pivoting.
///
/// The factorization is computed once and can then solve many right-hand
/// sides cheaply (`O(n^2)` per solve). This is the backbone of the AC
/// power-flow Newton iterations, PTDF assembly, and the active-set QP
/// solver's KKT solves.
///
/// # Example
///
/// ```
/// use ed_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), ed_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// // verify A x = b
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 3.0).abs() < 1e-12 && (b[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: row `i` of the factorization is row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    perm_sign: f64,
}

/// Pivot threshold below which the matrix is declared singular.
const PIVOT_TOL: f64 = 1e-12;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is rectangular.
    /// - [`LinalgError::Singular`] if a pivot smaller than `1e-12` relative
    ///   to the matrix scale is encountered.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        ed_obs::counter("linalg.lu.factors", 1);
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.norm_inf().max(1.0);

        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOL * scale {
                return Err(LinalgError::Singular { column: k });
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= factor * ukj;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, perm_sign: sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    // Triangular substitution reads/writes x[j] for j both sides of i; the
    // indexed form matches the textbook recurrence.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Apply permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A^T x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_transpose(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // A^T = U^T L^T P, so solve U^T y = b, then L^T z = y, then x = P^T z.
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.lu[(j, i)] * y[j];
            }
            y[i] = s / self.lu[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.lu[(j, i)] * y[j];
            }
            y[i] = s;
        }
        let mut x = vec![0.0; n];
        for (i, &pi) in self.perm.iter().enumerate() {
            x[pi] = y[i];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `B.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs with {n} rows"),
                found: format!("{}x{}", b.rows(), b.cols()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Explicit inverse `A^{-1}` (prefer [`Lu::solve`] when possible).
    ///
    /// # Errors
    ///
    /// Propagates solve errors (shape errors cannot occur here).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert_vec_close(&a.matvec(&x).unwrap(), &[3.0, 5.0], 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[7.0, 9.0]).unwrap();
        assert_vec_close(&x, &[9.0, 7.0], 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn not_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_solve_matches() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[2.0, -3.0, 1.0], &[0.0, 1.0, 5.0]]);
        let lu = Lu::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve_transpose(&b).unwrap();
        let check = a.transpose().matvec(&x).unwrap();
        assert_vec_close(&check, &b, 1e-10);
    }

    #[test]
    fn inverse_matches_identity() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let diff = &prod - &Matrix::identity(2);
        assert!(diff.norm_inf() < 1e-12);
    }

    #[test]
    fn larger_random_system() {
        // Deterministic "random" matrix via a simple LCG; diagonally dominated
        // so it is well-conditioned.
        let n = 40;
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert_vec_close(&x, &x_true, 1e-9);
    }
}
