//! Compressed sparse column (CSC) matrices.
//!
//! [`CscMatrix`] is the packed interchange format between the optimization
//! model IR (`ed_optim::model::Model`) and anything that wants to scan a
//! constraint matrix column-by-column without touching its zeros: presolve,
//! basis factorization, and benchmarks that report nonzero counts. It is a
//! *storage* type — the numerical heavy lifting (factorization, solves)
//! stays in the dense [`Lu`](crate::Lu) kernels, which are the right tool at
//! the few-thousand-row scale this workspace targets.
//!
//! Entries inside each column are stored sorted by row index with no
//! duplicates; [`CscMatrix::from_triplets`] sorts and coalesces on the way
//! in, so assembly order does not matter.
//!
//! # Example
//!
//! ```
//! use ed_linalg::CscMatrix;
//!
//! # fn main() -> Result<(), ed_linalg::LinalgError> {
//! // [ 2 0 ]
//! // [ 1 3 ]
//! let a = CscMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 3.0)])?;
//! assert_eq!(a.nnz(), 3);
//! assert_eq!(a.matvec(&[1.0, 1.0]), vec![2.0, 4.0]);
//! # Ok(())
//! # }
//! ```

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A sparse matrix in compressed sparse column form.
///
/// Column `j` occupies the half-open slice `col_ptr[j]..col_ptr[j + 1]` of
/// the parallel `row_idx` / `values` arrays. Within a column, entries are
/// sorted by row index and rows are unique. Explicit zeros are dropped at
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// An all-zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> CscMatrix {
        CscMatrix {
            nrows,
            ncols,
            col_ptr: vec![0; ncols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from `(row, col, value)` triplets. Triplets may arrive in any
    /// order; duplicates are summed and resulting (or explicit) zeros are
    /// dropped.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when any triplet indexes outside
    /// `nrows × ncols`.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<CscMatrix, LinalgError> {
        for &(r, c, _) in triplets {
            if r >= nrows || c >= ncols {
                return Err(LinalgError::ShapeMismatch {
                    expected: format!("indices inside {nrows}x{ncols}"),
                    found: format!("triplet at ({r}, {c})"),
                });
            }
        }
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        for &(r, c, v) in triplets {
            cols[c].push((r, v));
        }
        Ok(CscMatrix::from_columns(nrows, &cols))
    }

    /// Builds from jagged per-column entry lists (the layout the model IR
    /// stores). Entries within a column may be unsorted or duplicated;
    /// duplicates are summed and zeros dropped. Row indices are *not*
    /// validated here — callers pass columns they already maintain.
    pub fn from_columns(nrows: usize, cols: &[Vec<(usize, f64)>]) -> CscMatrix {
        let ncols = cols.len();
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for col in cols {
            scratch.clear();
            scratch.extend_from_slice(col);
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = scratch[i].1;
                i += 1;
                while i < scratch.len() && scratch[i].0 == r {
                    v += scratch[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    row_idx.push(r);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix { nrows, ncols, col_ptr, row_idx, values }
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(a: &Matrix) -> CscMatrix {
        let (nrows, ncols) = (a.rows(), a.cols());
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for j in 0..ncols {
            for i in 0..nrows {
                let v = a[(i, j)];
                if v != 0.0 {
                    row_idx.push(i);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix { nrows, ncols, col_ptr, row_idx, values }
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut a = Matrix::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for (i, v) in self.col(j) {
                a[(i, j)] = v;
            }
        }
        a
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates column `j` as `(row, value)` pairs in increasing row order.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        self.row_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// The stored entry count of column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                for (i, v) in self.col(j) {
                    y[i] += v * xj;
                }
            }
        }
        y
    }

    /// `x = Aᵀ·y` — one dot product per column, cache-friendly in CSC.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != nrows`.
    pub fn matvec_transpose(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.nrows, "matvec_transpose dimension mismatch");
        (0..self.ncols).map(|j| self.col(j).map(|(i, v)| v * y[i]).sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sort_coalesce_and_drop_zeros() {
        // (1,1) arrives as 2.0 + 1.0; (0,1) arrives as 5.0 - 5.0 → dropped.
        let a = CscMatrix::from_triplets(
            2,
            2,
            &[(1, 1, 2.0), (0, 0, 4.0), (1, 1, 1.0), (0, 1, 5.0), (0, 1, -5.0)],
        )
        .unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.col(0).collect::<Vec<_>>(), vec![(0, 4.0)]);
        assert_eq!(a.col(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
    }

    #[test]
    fn out_of_range_triplet_rejected() {
        assert!(CscMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CscMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn dense_round_trip() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        let s = CscMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = Matrix::from_rows(&[&[1.0, -2.0, 0.0], &[0.0, 4.0, 5.0]]);
        let s = CscMatrix::from_dense(&d);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(s.matvec(&x), vec![-3.0, 23.0]);
        let y = [2.0, -1.0];
        assert_eq!(s.matvec_transpose(&y), vec![2.0, -8.0, -5.0]);
    }

    #[test]
    fn empty_shapes() {
        let a = CscMatrix::zeros(0, 0);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.matvec(&[]), Vec::<f64>::new());
        let b = CscMatrix::zeros(3, 0);
        assert_eq!(b.matvec(&[]), vec![0.0; 3]);
    }

    #[test]
    fn from_columns_matches_triplets() {
        let cols = vec![vec![(1, 2.0), (0, 1.0)], vec![], vec![(2, -4.0), (2, 4.0)]];
        let a = CscMatrix::from_columns(3, &cols);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (1, 2.0)]);
        assert_eq!(a.col_nnz(2), 0);
    }
}
