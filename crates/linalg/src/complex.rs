//! Minimal complex arithmetic for AC power-flow admittance calculations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Used for branch impedances/admittances and complex power `S = P + jQ` in
/// the AC power-flow code. Only the operations that the workspace needs are
/// provided.
///
/// # Example
///
/// ```
/// use ed_linalg::Complex;
///
/// let z = Complex::new(0.002, 0.05); // line impedance from the DSN'17 paper
/// let y = z.inv();                   // admittance
/// assert!((z * y - Complex::ONE).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar coordinates (magnitude, angle in radians).
    pub fn from_polar(mag: f64, angle: f64) -> Self {
        Complex::new(mag * angle.cos(), mag * angle.sin())
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2` (avoids a square root).
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities if `z` is exactly zero, mirroring `f64` division.
    pub fn inv(self) -> Self {
        let d = self.abs_sq();
        Complex::new(self.re / d, -self.im / d)
    }

    /// `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs * self
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division by a complex number IS multiplication by its reciprocal;
    // the lint only sees the operator mismatch.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z + (-z), Complex::ZERO));
    }

    #[test]
    fn magnitude_and_conjugate() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.abs_sq(), 25.0);
        assert!(close(z * z.conj(), Complex::new(25.0, 0.0)));
    }

    #[test]
    fn inverse_and_division() {
        let z = Complex::new(0.002, 0.05);
        assert!(close(z * z.inv(), Complex::ONE));
        let w = Complex::new(1.0, 1.0);
        assert!(close((w / z) * z, w));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!(close(Complex::J * Complex::J, Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn sum_accumulates() {
        let total: Complex = [Complex::new(1.0, 2.0), Complex::new(3.0, -1.0)]
            .into_iter()
            .sum();
        assert!(close(total, Complex::new(4.0, 1.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn scalar_multiplication_commutes() {
        let z = Complex::new(1.5, -2.5);
        assert!(close(z * 2.0, 2.0 * z));
    }
}
