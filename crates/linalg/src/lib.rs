//! Dense linear-algebra substrate for the `ed-security` workspace.
//!
//! The power-flow and optimization crates in this workspace need a small but
//! reliable set of dense numerical kernels:
//!
//! - [`Matrix`] — a row-major dense `f64` matrix with the usual arithmetic,
//!   slicing and assembly helpers.
//! - [`Lu`] — LU factorization with partial pivoting, used for linear solves
//!   in the Newton–Raphson AC power flow, PTDF computation, and the
//!   active-set QP solver.
//! - [`Complex`] — complex arithmetic for AC admittance matrices.
//! - [`CscMatrix`] — compressed sparse column storage for constraint
//!   matrices, with dense↔sparse conversion and column iteration; the
//!   interchange format between the optimization model IR and presolve.
//!
//! Everything here is implemented from scratch (no external linear-algebra
//! crates) and sized for the problems in this workspace: networks with up to
//! a few hundred buses, and optimization bases with up to a few thousand
//! rows. All kernels are `O(n^3)` dense algorithms with partial pivoting for
//! stability.
//!
//! # Example
//!
//! ```
//! use ed_linalg::{Matrix, Lu};
//!
//! # fn main() -> Result<(), ed_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let lu = Lu::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod error;
mod lu;
mod matrix;
mod sparse;
mod vector;

pub use complex::Complex;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use sparse::CscMatrix;
pub use vector::{axpy, dot, norm_inf, norm_two, scale, sub};
