//! Deterministic, dependency-free pseudo-random numbers.
//!
//! The crate exists so the workspace builds fully offline: it mirrors the
//! small subset of the `rand` 0.8 API the rest of the codebase uses
//! (`StdRng::seed_from_u64`, `gen`, `gen_range`, `gen_bool`) on top of a
//! xoshiro256** generator seeded through SplitMix64. Sequences are stable
//! across platforms and releases — seeded experiments, synthetic cases, and
//! the fault-injection harness all rely on that reproducibility.
//!
//! ```
//! use ed_rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let again: f64 = StdRng::seed_from_u64(42).gen_range(0.0..1.0);
//! assert_eq!(x, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Equal seeds give equal
    /// sequences on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be drawn uniformly from the generator's full range,
/// mirroring `rand`'s `Standard` distribution for the types we use.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

/// Ranges that can be sampled uniformly, mirroring `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

/// Convenience methods over a generator, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value over the type's full range (`Standard`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::sample(self.as_std_rng())
    }

    /// A uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsStdRng,
    {
        range.sample_from(self.as_std_rng())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsStdRng,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        self.as_std_rng().next_f64() < p
    }
}

/// Access to the concrete generator backing a [`Rng`] — the crate ships a
/// single generator type, so the trait methods can stay non-generic.
pub trait AsStdRng {
    /// The underlying [`StdRng`].
    fn as_std_rng(&mut self) -> &mut StdRng;
}

/// The crate's generator: xoshiro256** with SplitMix64 seeding.
///
/// Not cryptographically secure; statistically solid and fast, which is all
/// simulation and test generation need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Module alias so `use ed_rng::rngs::StdRng` mirrors `rand::rngs::StdRng`.
pub mod rngs {
    pub use crate::StdRng;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl StdRng {
    fn next_raw(&mut self) -> u64 {
        let out = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform u64 in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (no modulo bias).
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let v = self.next_raw();
            let hi = ((v as u128 * bound as u128) >> 64) as u64;
            let lo = (v as u128 * bound as u128) as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl AsStdRng for StdRng {
    fn as_std_rng(&mut self) -> &mut StdRng {
        self
    }
}

impl Standard for u8 {
    fn sample(rng: &mut StdRng) -> u8 {
        (rng.next_raw() >> 56) as u8
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_raw() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_raw()
    }
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_raw() & 1 == 1
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let span = self.end - self.start;
        assert!(span.is_finite(), "non-finite range {:?}", self);
        self.start + rng.next_f64() * span
    }
}

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.next_below(span) as $t
            }
        }
    };
}

int_range!(usize);
int_range!(u64);
int_range!(u32);

impl SampleRange<i64> for Range<i64> {
    fn sample_from(self, rng: &mut StdRng) -> i64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(rng.next_below(span) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = StdRng::seed_from_u64(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn standard_u8_covers_bytes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            let b: u8 = r.gen();
            seen[b as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(6);
        let _ = r.gen_range(5usize..5);
    }
}
